"""Metric-registry semantics: live instruments vs the shared no-op path."""

import json

from repro.obs import NULL_REGISTRY, MetricRegistry, NullRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("events")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge_last_write_wins(self):
        g = Gauge("level")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_aggregates(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        for v in (2.0, 4.0, 9.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == 15.0
        assert s["mean"] == 5.0
        assert s["min"] == 2.0
        assert s["max"] == 9.0


class TestMetricRegistry:
    def test_lookup_is_memoized(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_bound_method_observes_registry_state(self):
        # the engine binds `registry.counter(...).inc` once and calls it
        # unconditionally; the registry must see those increments
        reg = MetricRegistry()
        inc = reg.counter("engine.packets").inc
        for _ in range(7):
            inc()
        assert reg.snapshot()["engine.packets"] == 7

    def test_names_sorted_across_kinds(self):
        reg = MetricRegistry()
        reg.gauge("g")
        reg.counter("c")
        reg.histogram("h")
        assert reg.names() == ["c", "g", "h"]

    def test_snapshot_is_json_clean(self):
        reg = MetricRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped == snap
        assert snap["c"] == 2
        assert snap["g"] == 0.5
        assert snap["h"]["count"] == 1

    def test_enabled_flag(self):
        assert MetricRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False


class TestNullRegistry:
    def test_shared_instruments(self):
        # one stateless instrument per kind, shared across names
        assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")
        assert NULL_REGISTRY.gauge("x") is NULL_REGISTRY.gauge("y")
        assert NULL_REGISTRY.histogram("x") is NULL_REGISTRY.histogram("y")

    def test_mutators_record_nothing(self):
        reg = NullRegistry()
        reg.counter("c").inc(100)
        reg.gauge("g").set(9.0)
        reg.histogram("h").observe(1.0)
        assert reg.counter("c").value == 0
        assert reg.gauge("g").value == 0.0
        assert reg.histogram("h").count == 0
        assert reg.snapshot() == {}
        assert reg.names() == []

    def test_interface_matches_live_registry(self):
        # instrumented code must not care which flavour it holds
        for reg in (MetricRegistry(), NULL_REGISTRY):
            reg.counter("c").inc()
            reg.gauge("g").set(1.0)
            reg.histogram("h").observe(2.0)
            json.dumps(reg.snapshot())
