"""Unit tests for the Dragonfly topology and its identifier arithmetic."""

import pytest

from repro.topology import Dragonfly


@pytest.fixture(scope="module")
def small():
    return Dragonfly(p=2, a=4, h=2, g=9)  # the paper's Figure-1 topology


class TestSizes:
    def test_paper_table2_g33(self):
        t = Dragonfly(4, 8, 4, 33)
        assert t.describe() == {
            "PEs": 1056,
            "switches": 264,
            "groups": 33,
            "links_per_group_pair": 1,
        }

    def test_paper_table2_g17(self):
        t = Dragonfly(4, 8, 4, 17)
        # The paper's Table 2 prints 135 switches; 17 groups x 8 switches
        # is 136 -- the paper value is a typo.
        assert t.describe() == {
            "PEs": 544,
            "switches": 136,
            "groups": 17,
            "links_per_group_pair": 2,
        }

    def test_paper_table2_g9(self):
        t = Dragonfly(4, 8, 4, 9)
        assert t.describe() == {
            "PEs": 288,
            "switches": 72,
            "groups": 9,
            "links_per_group_pair": 4,
        }

    def test_paper_table2_large(self):
        t = Dragonfly(13, 26, 13, 27)
        assert t.describe() == {
            "PEs": 9126,
            "switches": 702,
            "groups": 27,
            "links_per_group_pair": 13,
        }

    def test_radix_formula(self, small):
        # p + (a-1) + h ports per switch
        assert small.radix == 2 + 3 + 2

    def test_balanced_max_size_has_one_link_per_pair(self, small):
        # g = a*h + 1 = 9 -> exactly one link per group pair
        assert small.links_per_group_pair == 1


class TestIdentifiers:
    def test_switch_group_roundtrip(self, small):
        for sw in range(small.num_switches):
            g = small.group_of(sw)
            s = small.local_index(sw)
            assert small.switch_id(g, s) == sw
            assert 0 <= g < small.g
            assert 0 <= s < small.a

    def test_node_switch_roundtrip(self, small):
        for n in range(small.num_nodes):
            sw = small.switch_of_node(n)
            assert n in small.nodes_of_switch(sw)

    def test_nodes_partition(self, small):
        seen = set()
        for sw in range(small.num_switches):
            nodes = set(small.nodes_of_switch(sw))
            assert not (nodes & seen)
            seen |= nodes
        assert seen == set(range(small.num_nodes))

    def test_switches_in_group_partition(self, small):
        seen = set()
        for g in range(small.g):
            sws = set(small.switches_in_group(g))
            assert len(sws) == small.a
            assert not (sws & seen)
            seen |= sws
        assert seen == set(range(small.num_switches))


class TestConnectivity:
    def test_local_neighbors_complete_graph(self, small):
        for sw in range(small.num_switches):
            nbrs = small.local_neighbors(sw)
            assert len(nbrs) == small.a - 1
            assert sw not in nbrs
            assert all(small.group_of(n) == small.group_of(sw) for n in nbrs)

    def test_global_links_land_in_right_groups(self, small):
        for ga in range(small.g):
            for gb in range(ga + 1, small.g):
                for link in small.links_between_groups(ga, gb):
                    assert small.group_of(link.endpoint_in(ga)) == ga
                    assert small.group_of(link.endpoint_in(gb)) == gb

    def test_global_neighbors_symmetric(self, small):
        for sw in range(small.num_switches):
            for peer in small.global_neighbors(sw):
                assert sw in small.global_neighbors(peer)

    def test_every_group_reaches_every_other(self, small):
        for g in range(small.g):
            assert set(small.connected_groups(g)) == (
                set(range(small.g)) - {g}
            )

    def test_link_endpoint_helpers_raise(self, small):
        link = small.global_links[0]
        with pytest.raises(ValueError):
            link.endpoint_in(link.group_a + link.group_b + 1)
        with pytest.raises(ValueError):
            link.other_end(-1)

    def test_links_between_same_group_raises(self, small):
        with pytest.raises(ValueError):
            small.links_between_groups(0, 0)


class TestNetworkxExport:
    def test_export_counts(self, small):
        g = small.to_networkx()
        assert g.number_of_nodes() == small.num_switches
        local_edges = sum(
            1 for _, _, d in g.edges(data=True) if d["kind"] == "local"
        )
        assert local_edges == small.g * small.a * (small.a - 1) // 2
        global_mult = sum(
            d["multiplicity"]
            for _, _, d in g.edges(data=True)
            if d["kind"] == "global"
        )
        assert global_mult == len(small.global_links)

    def test_export_diameter_small(self, small):
        import networkx as nx

        # max-size dragonfly: any switch pair within 3 hops
        assert nx.diameter(small.to_networkx()) <= 3


class TestValidation:
    def test_rejects_too_many_groups(self):
        with pytest.raises(ValueError, match="exceeds the maximum"):
            Dragonfly(2, 4, 2, 10)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Dragonfly(0, 4, 2, 3)

    def test_rejects_unknown_arrangement(self):
        with pytest.raises(ValueError, match="unknown arrangement"):
            Dragonfly(2, 4, 2, 3, arrangement="banyan")

    def test_rejects_nondivisible_groups(self):
        # a*h = 8 ports, g-1 = 5 peers -> not divisible
        with pytest.raises(ValueError, match="divide evenly"):
            Dragonfly(2, 4, 2, 6)

    def test_single_group_has_no_global_links(self):
        t = Dragonfly(2, 4, 2, 1)
        assert t.global_links == []
        assert t.links_per_group_pair == 0
