"""Tests for the global link arrangements, including property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Dragonfly, validate_topology
from repro.topology.arrangements import (
    ARRANGEMENTS,
    absolute_arrangement,
    circulant_arrangement,
    relative_arrangement,
)


def _valid_phag():
    """Strategy producing (p, a, h, g) with (g-1) | a*h and sane sizes."""

    def build(draw):
        a = draw(st.integers(min_value=1, max_value=8))
        h = draw(st.integers(min_value=1, max_value=4))
        ports = a * h
        divisors = [d for d in range(1, ports + 1) if ports % d == 0]
        g = draw(st.sampled_from(divisors)) + 1
        p = draw(st.integers(min_value=1, max_value=4))
        return (p, a, h, g)

    return st.composite(lambda draw: build(draw))()


class TestArrangementSpecs:
    @pytest.mark.parametrize("name", sorted(ARRANGEMENTS))
    def test_every_port_used_exactly_once(self, name):
        a, h, g = 4, 2, 9
        specs = ARRANGEMENTS[name](a, h, g)
        used = {}
        for gi, qi, gj, qj in specs:
            for grp, port in [(gi, qi), (gj, qj)]:
                key = (grp, port)
                assert key not in used, f"port {key} used twice"
                used[key] = True
        assert len(used) == g * a * h

    @pytest.mark.parametrize("name", sorted(ARRANGEMENTS))
    def test_m_links_per_pair(self, name):
        a, h, g = 8, 4, 9
        m = a * h // (g - 1)
        specs = ARRANGEMENTS[name](a, h, g)
        from collections import Counter

        pairs = Counter((s.group_i, s.group_j) for s in specs)
        assert all(count == m for count in pairs.values())
        assert len(pairs) == g * (g - 1) // 2

    def test_absolute_full_size_matches_kim(self):
        # For g = a*h + 1 the absolute arrangement reduces to the classic
        # one: port q of group i connects to group q if q < i else q + 1.
        a, h, g = 4, 2, 9
        for spec in absolute_arrangement(a, h, g):
            gi, qi, gj, qj = spec
            assert gj == (qi if qi < gi else qi + 1)
            assert gi == (qj if qj < gj else qj + 1)

    def test_relative_offset_structure(self):
        a, h, g = 4, 2, 9
        for gi, qi, gj, qj in relative_arrangement(a, h, g):
            # port block o-1 of group gi points at (gi + o) mod g
            o = qi + 1  # m == 1 here
            assert gj == (gi + o) % g or gi == (gj + (qj + 1)) % g

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            absolute_arrangement(4, 2, 1)
        with pytest.raises(ValueError):
            circulant_arrangement(2, 2, 6)  # 5 does not divide 4
        with pytest.raises(ValueError):
            relative_arrangement(1, 1, 3)  # needs 2 ports, has 1


class TestArrangementProperties:
    @settings(max_examples=30, deadline=None)
    @given(phag=_valid_phag())
    def test_absolute_builds_valid_topology(self, phag):
        p, a, h, g = phag
        validate_topology(Dragonfly(p, a, h, g, arrangement="absolute"))

    @settings(max_examples=20, deadline=None)
    @given(phag=_valid_phag())
    def test_relative_builds_valid_topology(self, phag):
        p, a, h, g = phag
        validate_topology(Dragonfly(p, a, h, g, arrangement="relative"))

    @settings(max_examples=20, deadline=None)
    @given(phag=_valid_phag())
    def test_circulant_builds_valid_topology(self, phag):
        p, a, h, g = phag
        validate_topology(Dragonfly(p, a, h, g, arrangement="circulant"))

    @settings(max_examples=20, deadline=None)
    @given(phag=_valid_phag())
    def test_arrangements_agree_on_pair_multiplicity(self, phag):
        p, a, h, g = phag
        if g < 2:
            return
        m = a * h // (g - 1)
        for name in ARRANGEMENTS:
            t = Dragonfly(p, a, h, g, arrangement=name)
            assert t.links_per_group_pair == m
