"""Property-based tests of the LP model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import PathStatsCache, model_throughput
from repro.model.bounds import shift_saturation_bound
from repro.topology import Dragonfly
from repro.traffic import Shift

TOPO = Dragonfly(2, 4, 2, 3)
CACHE = PathStatsCache(TOPO)
DEMAND = Shift(TOPO, 1, 0).demand_matrix()
BOUND = shift_saturation_bound(TOPO)


def _weight_fn(w3, w4, w5, w6):
    table = {3: w3, 4: w4, 5: w5, 6: w6}

    def fn(l1, l2):
        return table.get(l1 + l2, 0.0)

    return fn


unit = st.floats(min_value=0.0, max_value=1.0)


class TestLpProperties:
    @settings(max_examples=25, deadline=None)
    @given(w3=unit, w4=unit, w5=unit, w6=unit)
    def test_throughput_in_valid_range(self, w3, w4, w5, w6):
        for mode in ("uniform", "free"):
            res = model_throughput(
                TOPO, DEMAND, weight_fn=_weight_fn(w3, w4, w5, w6),
                cache=CACHE, mode=mode,
            )
            assert 0.0 <= res.throughput <= 1.0 + 1e-9
            assert 0.0 <= res.min_fraction <= 1.0 + 1e-6
            # flow conservation bound holds for every candidate set
            assert res.throughput <= BOUND + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(w4=unit, w5=unit)
    def test_uniform_never_exceeds_free(self, w4, w5):
        fn = _weight_fn(1.0, w4, w5, 0.5)
        uni = model_throughput(
            TOPO, DEMAND, weight_fn=fn, cache=CACHE, mode="uniform"
        ).throughput
        free = model_throughput(
            TOPO, DEMAND, weight_fn=fn, cache=CACHE, mode="free"
        ).throughput
        assert uni <= free + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(w5=unit)
    def test_free_mode_monotone_in_set_growth(self, w5):
        # adding paths can never reduce free-mode capacity
        small = model_throughput(
            TOPO, DEMAND, weight_fn=_weight_fn(1, 1, w5 * 0.5, 0),
            cache=CACHE, mode="free",
        ).throughput
        large = model_throughput(
            TOPO, DEMAND, weight_fn=_weight_fn(1, 1, w5, 0.5),
            cache=CACHE, mode="free", monotonic=False,
        ).throughput
        assert large >= small - 1e-6

    def test_min_fraction_at_bound_matches_theory(self):
        from repro.model.bounds import optimal_min_fraction

        res = model_throughput(
            TOPO, DEMAND, weight_fn=lambda a, b: 1.0, cache=CACHE
        )
        assert res.min_fraction == pytest.approx(
            optimal_min_fraction(TOPO), rel=0.05
        )

    def test_scaling_demand_scales_throughput(self):
        res1 = model_throughput(
            TOPO, DEMAND, weight_fn=lambda a, b: 1.0, cache=CACHE
        )
        res2 = model_throughput(
            TOPO, 2.0 * DEMAND, weight_fn=lambda a, b: 1.0, cache=CACHE
        )
        assert res2.throughput == pytest.approx(res1.throughput / 2, rel=1e-3)
