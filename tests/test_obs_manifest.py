"""Run-manifest provenance: determinism, cache outcomes, persistence."""

import json
import subprocess
import sys

import pytest

from repro.obs import ObsConfig, RunManifest
from repro.perf import ModelTask, SimTask, SweepExecutor
from repro.perf.cache import SimCache
from repro.routing.pathset import AllVlbPolicy
from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic.patterns import Shift, UniformRandom

SMALL = dict(window_cycles=80, warmup_windows=1)


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


class TestManifestAttachment:
    def test_every_simulate_attaches_one(self, topo):
        res = simulate(
            topo, UniformRandom(topo), 0.1,
            params=SimParams(**SMALL), seed=3,
        )
        m = res.manifest
        assert m is not None
        assert m.kind == "sim"
        assert m.fingerprint is not None
        assert m.spec_fingerprint is not None
        assert m.routing == "ugal-l"
        assert m.load == 0.1
        assert m.seed == 3
        assert m.cache == "computed"
        assert m.wall_seconds > 0
        assert m.engine_cycles == SimParams(**SMALL).total_cycles
        assert m.metrics is None  # metrics were off

    def test_metrics_snapshot_lands_on_manifest(self, topo):
        res = simulate(
            topo, UniformRandom(topo), 0.1,
            params=SimParams(**SMALL, obs=ObsConfig(metrics=True)),
            seed=3,
        )
        metrics = res.manifest.metrics
        assert metrics is not None
        assert metrics["engine.packets_injected"] > 0
        assert metrics["engine.cycles"] == SimParams(**SMALL).total_cycles

    def test_model_results_carry_manifests(self, topo):
        task = ModelTask(
            topo=topo, pattern=Shift(topo, 1), policy=AllVlbPolicy()
        )
        with SweepExecutor(jobs=1) as ex:
            res = ex.run_models([task])[0]
        m = res.manifest
        assert m is not None and m.kind == "model"
        assert m.fingerprint == task.key()
        assert m.wall_seconds > 0


class TestIdentityDeterminism:
    def test_identity_stable_in_process(self, topo):
        kwargs = dict(params=SimParams(**SMALL), seed=5)
        a = simulate(topo, Shift(topo, 1), 0.1, **kwargs).manifest
        b = simulate(topo, Shift(topo, 1), 0.1, **kwargs).manifest
        assert a.identity() == b.identity()

    def test_identity_matches_across_processes(self, topo):
        code = (
            "import json\n"
            "from repro.obs.manifest import RunManifest  # noqa: F401\n"
            "from repro.sim import SimParams, simulate\n"
            "from repro.topology import Dragonfly\n"
            "from repro.traffic.patterns import Shift\n"
            "topo = Dragonfly(2, 4, 2, 9)\n"
            "res = simulate(topo, Shift(topo, 1), 0.1,\n"
            "    params=SimParams(window_cycles=80, warmup_windows=1),\n"
            "    seed=5)\n"
            "print(json.dumps(res.manifest.identity()))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        ).stdout
        child_identity = json.loads(out)
        local = simulate(
            topo, Shift(topo, 1), 0.1,
            params=SimParams(**SMALL), seed=5,
        ).manifest.identity()
        assert child_identity == local

    def test_identity_neutral_to_obs(self, topo):
        base = simulate(
            topo, Shift(topo, 1), 0.1,
            params=SimParams(**SMALL), seed=5,
        ).manifest
        traced = simulate(
            topo, Shift(topo, 1), 0.1,
            params=SimParams(
                **SMALL, obs=ObsConfig(metrics=True, sample_every=20)
            ),
            seed=5,
        ).manifest
        assert base.identity() == traced.identity()


class TestDictRoundTrip:
    def test_to_from_dict(self):
        m = RunManifest(
            kind="sim", fingerprint="f" * 64, topology="dfly",
            routing="min", load=0.2, seed=9, wall_seconds=1.5,
            engine_cycles=320, cache="stored", metrics={"c": 1},
        )
        again = RunManifest.from_dict(m.to_dict())
        assert again.to_dict() == m.to_dict()

    def test_unknown_keys_ignored(self):
        data = RunManifest().to_dict()
        data["future_field"] = "whatever"
        assert RunManifest.from_dict(data).to_dict()["kind"] == "sim"


class TestCacheOutcomes:
    def test_stored_then_hit(self, topo, tmp_path):
        pattern = UniformRandom(topo)
        task = SimTask(
            topo, pattern, 0.05, routing="min",
            params=SimParams(**SMALL), seed=1,
        )
        cache = SimCache(str(tmp_path))
        with SweepExecutor(jobs=1, cache=cache) as ex:
            computed = ex.run([task])[0]
        assert computed.manifest.cache == "stored"

        with SweepExecutor(jobs=1, cache=cache) as ex:
            hit = ex.run([task])[0]
        assert hit.manifest is not None
        assert hit.manifest.cache == "hit"
        # provenance survived the disk round trip
        assert hit.manifest.identity() == computed.manifest.identity()
        # and the measurement itself is bit-identical (equality ignores
        # the manifest by construction)
        assert hit == computed

    def test_manifest_is_sibling_of_result_payload(self, topo, tmp_path):
        task = SimTask(
            topo, UniformRandom(topo), 0.05, routing="min",
            params=SimParams(**SMALL), seed=1,
        )
        cache = SimCache(str(tmp_path))
        with SweepExecutor(jobs=1, cache=cache) as ex:
            ex.run([task])
        record = json.load(open(cache.path_for(task.key())))
        assert "manifest" in record
        assert "manifest" not in record["result"]

    def test_pre_manifest_records_still_load(self, topo, tmp_path):
        # a v3 entry written before manifests existed has no sibling key
        task = SimTask(
            topo, UniformRandom(topo), 0.05, routing="min",
            params=SimParams(**SMALL), seed=1,
        )
        cache = SimCache(str(tmp_path))
        with SweepExecutor(jobs=1, cache=cache) as ex:
            ex.run([task])
        path = cache.path_for(task.key())
        record = json.load(open(path))
        del record["manifest"]
        with open(path, "w") as fh:
            json.dump(record, fh)
        hit = SimCache(str(tmp_path)).get(task.key())
        assert hit is not None
        assert hit.manifest is None
