"""Run-to-run determinism and optimized-vs-legacy engine identity.

The seed engine kept its transmit work list in a ``set`` of channel
objects, so iteration order -- and with it, any future behaviour that
depends on event order -- varied with object memory addresses from run
to run.  The engine now uses ordered structures (wheels and
insertion-ordered dicts) throughout; these tests pin that down:

* the same (topology, pattern, routing, seed) produces bit-identical
  ``SimResult`` records on repeated in-process runs, and
* the optimized engine matches :class:`~repro.perf.bench.LegacyNetwork`,
  a faithful re-implementation of the seed's per-cycle data structures,
  bit for bit across routing variants.
"""

import pytest

from repro.perf.bench import LegacyNetwork, legacy_engine
from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic.patterns import UniformRandom

TOPO = Dragonfly(2, 4, 2, 5)
PARAMS = SimParams(window_cycles=80)


def _run(routing, load=0.2, seed=3):
    return simulate(
        TOPO,
        UniformRandom(TOPO),
        load,
        routing=routing,
        params=PARAMS,
        seed=seed,
    )


@pytest.mark.parametrize("routing", ["min", "vlb", "ugal-l", "par"])
def test_same_seed_same_result(routing):
    """Two fresh runs with one seed agree on every SimResult field.

    Object identities (hence hashes and set orders) differ between the
    two runs, so this regresses the old address-ordered work lists.
    """
    assert _run(routing) == _run(routing)


def test_different_seeds_differ():
    # sanity: the equality above is not vacuous
    assert _run("ugal-l", seed=3) != _run("ugal-l", seed=4)


@pytest.mark.parametrize("routing", ["min", "ugal-l", "par"])
def test_legacy_engine_bit_identical(routing):
    """The hot-path rewrite changed no observable behaviour."""
    reference = _run(routing)
    with legacy_engine():
        legacy = _run(routing)
    assert legacy == reference


def test_legacy_engine_identity_at_high_load():
    """Deep queues exercise budgets, credit stalls, and drain paths."""
    optimized = _run("min", load=0.9)
    with legacy_engine():
        legacy = _run("min", load=0.9)
    assert legacy == optimized


def test_legacy_network_is_swapped_in():
    import repro.sim.engine as engine_module

    with legacy_engine():
        assert engine_module.Network is LegacyNetwork
    assert engine_module.Network is not LegacyNetwork
