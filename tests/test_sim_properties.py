"""Property-based tests of simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import build_network
from repro.sim.packet import Packet
from repro.sim.params import SimParams
from repro.sim.routing import make_routing
from repro.topology import Dragonfly

TOPO = Dragonfly(2, 4, 2, 5)  # small: 20 switches, 40 nodes
PARAMS = SimParams(window_cycles=50, buffer_size=3)


def _run_random_batch(pairs, routing, seed):
    """Inject arbitrary packets, drain, and check every invariant."""
    network = build_network(TOPO, PARAMS, routing)
    ejected = []
    network.on_eject = lambda pkt, cyc: ejected.append(pkt)
    algo = make_routing(network, routing, rng=np.random.default_rng(seed))
    network.on_arrival = algo.revise_at
    for src, dst in pairs:
        pkt = Packet(src, dst, 0)
        algo.route_packet(pkt)
        network.inject(pkt)
    for _ in range(4000):
        if network.quiescent():
            break
        network.step()
        # invariant: credits within bounds every cycle
        for ch in network.channels.values():
            assert all(0 <= c <= PARAMS.buffer_size for c in ch.credits)
    else:
        raise AssertionError("did not drain")
    return network, ejected


@st.composite
def packet_batches(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    pairs = []
    for _ in range(n):
        src = draw(st.integers(0, TOPO.num_nodes - 1))
        dst = draw(st.integers(0, TOPO.num_nodes - 1))
        if src != dst:
            pairs.append((src, dst))
    return pairs


class TestConservationProperties:
    @settings(max_examples=12, deadline=None)
    @given(pairs=packet_batches(), seed=st.integers(0, 100))
    def test_every_packet_delivered_ugal(self, pairs, seed):
        network, ejected = _run_random_batch(pairs, "ugal-l", seed)
        assert len(ejected) == len(pairs)
        # destination correctness
        for pkt in ejected:
            assert (pkt.src_node, pkt.dst_node) in pairs
        # all credits restored
        for ch in network.channels.values():
            assert all(c == PARAMS.buffer_size for c in ch.credits)

    @settings(max_examples=8, deadline=None)
    @given(pairs=packet_batches(), seed=st.integers(0, 100))
    def test_every_packet_delivered_par(self, pairs, seed):
        _network, ejected = _run_random_batch(pairs, "par", seed)
        assert len(ejected) == len(pairs)

    @settings(max_examples=8, deadline=None)
    @given(pairs=packet_batches(), seed=st.integers(0, 100))
    def test_every_packet_delivered_vlb(self, pairs, seed):
        _network, ejected = _run_random_batch(pairs, "vlb", seed)
        assert len(ejected) == len(pairs)
        for pkt in ejected:
            # VLB never exceeds 6 switch hops on a fully connected group
            assert pkt.path_hops <= 6


class TestRouteProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        src=st.integers(0, TOPO.num_nodes - 1),
        dst=st.integers(0, TOPO.num_nodes - 1),
        seed=st.integers(0, 50),
    )
    def test_routes_start_and_end_correctly(self, src, dst, seed):
        if src == dst:
            return
        network = build_network(TOPO, PARAMS, "ugal-g")
        algo = make_routing(
            network, "ugal-g", rng=np.random.default_rng(seed)
        )
        pkt = Packet(src, dst, 0)
        algo.route_packet(pkt)
        src_sw = TOPO.switch_of_node(src)
        dst_sw = TOPO.switch_of_node(dst)
        if pkt.route:
            assert pkt.route[0].src_router == src_sw
            assert pkt.route[-1].dst_router == dst_sw
            # consecutive channels chain through routers
            for a, b in zip(pkt.route, pkt.route[1:]):
                assert a.dst_router == b.src_router
        else:
            assert src_sw == dst_sw
        # VC sequence is valid for the configured scheme
        assert len(pkt.vcs) == len(pkt.route)
        assert all(0 <= vc < network.num_vcs for vc in pkt.vcs)
