"""The topology abstraction layer, end to end.

Covers the TOPOLOGY registry round trip for every registered kind
(spec/of/parse/build/fingerprint parity), the per-topology hooks the
rest of the stack dispatches on, the cross-topology deadlock
certification matrix (each topology's declared VC scheme certifies;
a seeded-cyclic mutant fails), the ordered-VLB policy and its codec,
the legacy-model fallback for policies with no class-weight
translation, and Algorithm 1 running end to end on a full mesh.
"""

import json

import numpy as np
import pytest

from repro.core import compute_tvlb
from repro.model.fastpath import FastModel
from repro.model.lp_model import model_throughput
from repro.routing.channels import Channel
from repro.routing.pathset import AllVlbPolicy, OrderedVlbPolicy
from repro.routing.serialization import policy_from_dict, policy_to_dict
from repro.routing.vlb import enumerate_vlb_descriptors
from repro.sim import SimParams
from repro.spec import PolicySpec, SpecError, TopologySpec
from repro.spec.registry import TOPOLOGY_REGISTRY
from repro.topology import (
    DEFAULT_DRAGONFLY,
    CascadeDragonfly,
    Dragonfly,
    FullMesh,
    default_dragonfly,
)
from repro.traffic import Shift
from repro.verify import build_cdg, certify_deadlock_freedom

TOPOLOGIES = [
    Dragonfly(2, 4, 2, 5),
    CascadeDragonfly(2, 4, 2, 5, rows=2, cols=2),
    FullMesh(6, p=2),
]


# ---------------------------------------------------------------------------
# Registry round trips
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "topo", TOPOLOGIES, ids=lambda t: type(t).__name__
)
def test_spec_of_build_round_trip(topo):
    spec = TopologySpec.of(topo)
    rebuilt = spec.build()
    assert type(rebuilt) is type(topo)
    assert rebuilt == topo


@pytest.mark.parametrize(
    "topo", TOPOLOGIES, ids=lambda t: type(t).__name__
)
def test_spec_dict_round_trip_and_fingerprint_parity(topo):
    spec = TopologySpec.of(topo)
    data = json.loads(json.dumps(spec.to_dict()))  # through-serialization
    back = TopologySpec.from_dict(data)
    assert back == spec
    assert back.fingerprint() == spec.fingerprint()


def test_dfly_dict_layout_is_kindless():
    """The historical dragonfly dict layout is preserved byte for byte."""
    assert TopologySpec.of(Dragonfly(4, 8, 4, 9)).to_dict() == {
        "p": 4, "a": 8, "h": 4, "g": 9, "arrangement": "absolute",
    }
    cascade = TopologySpec.of(
        CascadeDragonfly(2, 4, 2, 5, rows=2, cols=2)
    ).to_dict()
    assert cascade == {
        "p": 2, "a": 4, "h": 2, "g": 5, "arrangement": "absolute",
        "rows": 2, "cols": 2,
    }


def test_fullmesh_dict_carries_kind_and_args():
    spec = TopologySpec.of(FullMesh(8, p=2))
    assert spec.to_dict() == {
        "kind": "full-mesh", "args": {"n": 8, "p": 2},
    }


def test_parse_forms_agree():
    assert TopologySpec.parse("4,8,4,9") == TopologySpec.parse("dfly:4,8,4,9")
    fm = TopologySpec.parse("full-mesh:8,2")
    assert fm == TopologySpec.of(FullMesh(8, p=2))
    assert TopologySpec.parse("full-mesh:8").build() == FullMesh(8, p=1)
    cascade = TopologySpec.parse("cascade:2,4,2,5,2,2").build()
    assert isinstance(cascade, CascadeDragonfly)
    assert (cascade.rows, cascade.cols) == (2, 2)


def test_parse_rejects_garbage_with_registry_help():
    with pytest.raises(SpecError, match="full-mesh"):
        TopologySpec.parse("not-a-topology")


def test_registry_lists_all_builtin_kinds():
    assert {"dfly", "cascade", "full-mesh"} <= set(TOPOLOGY_REGISTRY.kinds())


def test_default_dragonfly_constant():
    assert DEFAULT_DRAGONFLY == Dragonfly(4, 8, 4, 9)
    fresh = default_dragonfly()
    assert fresh == DEFAULT_DRAGONFLY
    assert fresh is not DEFAULT_DRAGONFLY


# ---------------------------------------------------------------------------
# Per-topology hooks
# ---------------------------------------------------------------------------
def test_dragonfly_hooks_defaults():
    topo = Dragonfly(2, 4, 2, 5)
    assert topo.deadlock_vc_scheme is None
    assert topo.default_model_engine == "fast"
    assert isinstance(topo.baseline_policy(), AllVlbPolicy)
    from repro.core.datapoints import table1_datapoints

    assert [p.describe() for p in topo.tvlb_datapoints(step=0.5)] == [
        p.describe() for p in table1_datapoints(step=0.5)
    ]


def test_fullmesh_hooks():
    topo = FullMesh(6)
    assert topo.deadlock_vc_scheme == "none"
    assert topo.default_model_engine == "legacy"
    assert topo.baseline_policy() is None
    ladder = topo.tvlb_datapoints(step=0.25)
    assert all(isinstance(p, OrderedVlbPolicy) for p in ladder)
    assert [p.fraction for p in ladder] == [0.25, 0.5, 0.75, 1.0]


def test_fullmesh_structure():
    topo = FullMesh(6, p=2)
    assert topo.n == 6
    assert (topo.a, topo.h, topo.g) == (1, 5, 6)
    assert topo.max_local_hops == 1
    assert topo.links_per_group_pair == 1
    assert topo.num_switches == 6
    assert topo.num_nodes == 12


# ---------------------------------------------------------------------------
# Ordered-VLB policy + codec
# ---------------------------------------------------------------------------
def test_ordered_policy_membership_is_ordered():
    topo = FullMesh(6)
    pol = OrderedVlbPolicy()
    for src, dst in [(0, 1), (2, 4), (1, 0)]:
        mids = [
            d.mid for d in pol.iter_descriptors(topo, src, dst)
        ]
        assert mids  # some candidate exists below the max id
        assert all(m > src and m > dst for m in mids)
    # pairs containing the max switch id admit no ordered candidate
    top = topo.num_switches - 1
    assert list(pol.iter_descriptors(topo, 0, top)) == []
    assert list(pol.iter_descriptors(topo, top, 0)) == []


def test_ordered_policy_fraction_subsets_nest():
    topo = FullMesh(8)
    full = {
        (s, d, desc.mid)
        for s in range(8)
        for d in range(8)
        if s != d
        for desc in OrderedVlbPolicy().iter_descriptors(topo, s, d)
    }
    half = {
        (s, d, desc.mid)
        for s in range(8)
        for d in range(8)
        if s != d
        for desc in OrderedVlbPolicy(0.5).iter_descriptors(topo, s, d)
    }
    assert half < full
    assert 0 < len(half) < len(full)


def test_ordered_policy_validation():
    with pytest.raises(ValueError):
        OrderedVlbPolicy(fraction=0.0)
    with pytest.raises(ValueError):
        OrderedVlbPolicy(fraction=1.5)


def test_ordered_policy_codec_round_trips():
    pol = OrderedVlbPolicy(fraction=0.5, seed=3)
    assert policy_from_dict(policy_to_dict(pol)) == pol
    spec = PolicySpec.of(pol)
    assert spec.build() == pol
    assert PolicySpec.parse("ordered:0.5,3") == spec
    assert PolicySpec.parse("ordered").build() == OrderedVlbPolicy()
    assert "ordered" in pol.describe() or "%" in pol.describe()


# ---------------------------------------------------------------------------
# Cross-topology certification matrix
# ---------------------------------------------------------------------------
CERTIFY_MATRIX = [
    (Dragonfly(2, 4, 2, 5), AllVlbPolicy(), "won"),
    (Dragonfly(2, 4, 2, 5), AllVlbPolicy(), "perhop"),
    (CascadeDragonfly(2, 4, 2, 5, rows=2, cols=2), AllVlbPolicy(), "won"),
    (FullMesh(8, p=2), OrderedVlbPolicy(), "none"),
    (FullMesh(8, p=2), OrderedVlbPolicy(fraction=0.5), "none"),
]


@pytest.mark.parametrize(
    "topo,policy,scheme",
    CERTIFY_MATRIX,
    ids=[
        f"{type(t).__name__}-{s}-{p.describe()}".replace(" ", "_")
        for t, p, s in CERTIFY_MATRIX
    ],
)
def test_declared_scheme_certifies(topo, policy, scheme):
    res = certify_deadlock_freedom(topo, policy, scheme=scheme)
    assert res.cycle is None, res.cycle
    assert res.exhaustive
    assert res.num_edges > 0


def test_all_vlb_under_one_vc_deadlocks():
    """Negative control: the unordered set cycles without VC protection."""
    res = certify_deadlock_freedom(FullMesh(8, p=2), AllVlbPolicy(),
                                   scheme="none")
    assert res.cycle is not None


def test_seeded_cycle_mutant_fails_certification():
    topo = FullMesh(6, p=2)
    graph = build_cdg(topo, OrderedVlbPolicy(), scheme="none")
    assert graph.find_cycle() is None
    link = topo.global_links[0]
    fwd = Channel(link.switch_a, link.switch_b, link.slot)
    rev = Channel(link.switch_b, link.switch_a, link.slot)
    graph.add_dependency(fwd, 0, rev, 0)
    graph.add_dependency(rev, 0, fwd, 0)
    cycle = graph.find_cycle()
    assert cycle is not None


# ---------------------------------------------------------------------------
# Model-engine dispatch
# ---------------------------------------------------------------------------
def test_legacy_model_enumerates_ordered_policy_exactly():
    topo = FullMesh(6, p=2)
    demand = Shift(topo, 1, 0).demand_matrix()
    res = model_throughput(topo, demand, policy=OrderedVlbPolicy())
    assert res.status == "optimal"
    assert 0.0 < res.throughput <= 1.0
    # sanity: the ordered set helps over pure MIN on the shift pattern
    res_half = model_throughput(
        topo, demand, policy=OrderedVlbPolicy(fraction=0.5)
    )
    assert res_half.status == "optimal"


def test_fast_model_rejects_ordered_policy_with_pointer():
    topo = FullMesh(6, p=2)
    demand = Shift(topo, 1, 0).demand_matrix()
    model = FastModel(topo)
    with pytest.raises(TypeError, match="legacy"):
        model.solve(demand, policy=OrderedVlbPolicy())


def test_legacy_and_fast_agree_on_translatable_policy():
    topo = FullMesh(6, p=2)
    demand = Shift(topo, 1, 0).demand_matrix()
    legacy = model_throughput(topo, demand, policy=AllVlbPolicy())
    fast = FastModel(topo).solve(demand, policy=AllVlbPolicy())
    assert legacy.throughput == pytest.approx(fast.throughput, abs=1e-6)


# ---------------------------------------------------------------------------
# Algorithm 1 end to end on the second topology
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_algorithm1_end_to_end_on_full_mesh():
    topo = FullMesh(5, p=2)
    res = compute_tvlb(
        topo,
        sim_params=SimParams(window_cycles=60),
        seed=0,
        step=0.5,
    )
    assert isinstance(res.policy, OrderedVlbPolicy)
    assert res.candidates
    # the winner certifies deadlock-free under the topology's scheme
    cert = certify_deadlock_freedom(topo, res.policy, scheme="none")
    assert cert.cycle is None


def test_vlb_descriptors_exist_on_full_mesh():
    topo = FullMesh(6)
    descs = list(enumerate_vlb_descriptors(topo, 0, 1))
    assert {d.mid for d in descs} == {2, 3, 4, 5}
