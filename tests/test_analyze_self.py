"""The CI gate, locally: ``repro analyze`` must run clean over src/.

Zero non-baselined findings against the committed baseline and identity
snapshot -- exactly what the ``analyze`` CI job enforces with
``python -m repro analyze --baseline analyze-baseline.json --fail-on
warning``.  A failure here means a change introduced a determinism /
cache-identity / registry-hygiene violation (fix it or add an audited
suppression), or changed the identity surface without bumping
CACHE_VERSION/SPEC_VERSION and refreshing the snapshot.
"""

import os

from repro.analyze import AnalyzeConfig, analyze_tree

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO, "analyze-baseline.json")


def test_src_tree_is_clean():
    report = analyze_tree(AnalyzeConfig(
        root=REPO, paths=("src",), baseline_path=BASELINE,
    ))
    assert report.passed("warning"), report.to_text(fail_on="warning")


def test_no_stale_baseline_entries():
    report = analyze_tree(AnalyzeConfig(
        root=REPO, paths=("src",), baseline_path=BASELINE,
    ))
    assert report.stale_baseline == [], (
        "baseline entries no longer match any finding; refresh with "
        "'python -m repro analyze --baseline analyze-baseline.json "
        "--write-baseline'"
    )


def test_baseline_only_grandfathers_reg301():
    """The committed debt is the known REG301 set in experiments/.

    Anything else showing up as baselined means new findings were
    grandfathered instead of fixed -- do that deliberately, not by
    accident.
    """
    report = analyze_tree(AnalyzeConfig(
        root=REPO, paths=("src",), baseline_path=BASELINE,
    ))
    assert {f.rule for f in report.baselined} <= {"REG301"}
    assert {f.path.rsplit("/", 1)[0] for f in report.baselined} <= {
        "src/repro/experiments"
    }
