"""Mutation-corpus tests: every rule fires on its seeded historical-bug
fixture and stays silent on the matching clean fixture.

The ``bad/`` fixtures under ``tests/fixtures/analyze`` reintroduce the
exact bug patterns the rules were written against (including the
``_busy_channels`` set-iteration shape the fast engine once shipped);
the ``clean/`` fixtures carry the corrected idiom.  A rule that misses
its bad fixture is broken; one that flags its clean fixture is too
noisy to gate CI.
"""

import os

import pytest

from repro.analyze import AnalyzeConfig, analyze_tree
from repro.analyze.engine import build_context
from repro.analyze.snapshot import identity_surface, save_snapshot

FIXTURES = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "analyze"
)


def run_rule(rule, *paths, root=FIXTURES, snapshot=None):
    rules = (rule,) if isinstance(rule, str) else tuple(rule)
    config = AnalyzeConfig(
        root=root,
        paths=tuple(paths),
        rules=rules,
        snapshot_path=snapshot,
    )
    return analyze_tree(config)


def firing_lines(report, rule):
    return [f.line for f in report.findings if f.rule == rule]


# one (rule, bad fixture, expected count, clean fixture) row per rule
CASES = [
    ("DET101", "bad/det101_set_iteration.py", 1,
     "clean/det101_set_iteration.py"),
    ("DET102", "bad/det102_dict_view.py", 2,
     "clean/det102_dict_view.py"),
    ("DET103", "bad/det103_unseeded_rng.py", 2,
     "clean/det103_unseeded_rng.py"),
    ("DET104", "bad/det104_wallclock.py", 3,
     "clean/det104_wallclock.py"),
    ("DET105", "bad/det105_builtin_hash.py", 1,
     "clean/det105_builtin_hash.py"),
    ("CACHE201", "bad/cache201_identity_dict.py", 3,
     "clean/cache201_identity_dict.py"),
    ("CACHE202", "bad/cache202_spec_fields.py", 2,
     "clean/cache202_spec_fields.py"),
    ("REG302", "bad/reg302_codec.py", 1, "clean/reg302_codec.py"),
    ("REG303", "bad/reg303_topology.py", 1, "clean/reg303_topology.py"),
]


@pytest.mark.parametrize(
    "rule,bad,count,clean", CASES, ids=[c[0] for c in CASES]
)
def test_rule_fires_on_bad_fixture(rule, bad, count, clean):
    report = run_rule(rule, bad)
    assert len(firing_lines(report, rule)) == count, report.to_text()


@pytest.mark.parametrize(
    "rule,bad,count,clean", CASES, ids=[c[0] for c in CASES]
)
def test_rule_silent_on_clean_fixture(rule, bad, count, clean):
    report = run_rule(rule, clean)
    assert firing_lines(report, rule) == [], report.to_text()


def test_det101_catches_the_busy_channels_shape():
    """The exact PR-2 bug: a set work list scanned in _transmit."""
    report = run_rule("DET101", "bad/det101_set_iteration.py")
    (finding,) = report.findings
    assert finding.rule == "DET101"
    assert "for channel in self._busy_channels" in finding.context
    assert finding.severity == "warning"
    assert finding.hint  # every finding carries a fix-it hint


def test_reg301_fires_across_packages_only():
    bad = run_rule("REG301", "bad")
    assert [f.path for f in bad.findings if f.rule == "REG301"] == [
        "bad/reg301_use/consumer.py"
    ]
    clean = run_rule("REG301", "clean")
    assert firing_lines(clean, "REG301") == []


def test_ana_suppression_audit():
    rules = ("DET101", "DET103", "DET104")
    bad = run_rule(rules, "bad/ana_suppressions.py")
    codes = sorted(f.rule for f in bad.findings)
    # two stale allows (DET103 on the import, DET101 on the list loop)
    # and one justification-free allow on the time.time() line
    assert codes == ["ANA001", "ANA001", "ANA002"]
    clean = run_rule(rules, "clean/ana_suppressions.py")
    assert clean.findings == []
    assert len(clean.suppressed) == 1


def test_ana001_only_audits_rules_that_ran():
    """A --rules subset must not condemn allows for skipped rules."""
    report = run_rule("DET104", "bad/ana_suppressions.py")
    codes = sorted(f.rule for f in report.findings)
    # the DET103/DET101 allows are untestable in this pass: no ANA001
    assert codes == ["ANA002"]


def test_cache203_snapshot_lifecycle(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    spec = src / "spec.py"
    spec.write_text(
        "SPEC_VERSION = 1\n\n\n"
        "class RunSpec:\n"
        "    kind: str = 'x'\n\n"
        "    def to_dict(self):\n"
        "        return {'kind': self.kind}\n\n"
        "    def fingerprint(self):\n"
        "        return str(self.to_dict())\n"
    )
    snap = str(tmp_path / "snap.json")

    def run():
        return analyze_tree(
            AnalyzeConfig(
                root=str(tmp_path), paths=("src",),
                rules=("CACHE203",), snapshot_path=snap,
            )
        )

    # 1. no snapshot committed yet -> actionable error
    report = run()
    assert any("no committed identity snapshot" in f.message
               for f in report.findings)

    # 2. snapshot written -> clean
    config = AnalyzeConfig(
        root=str(tmp_path), paths=("src",), snapshot_path=snap
    )
    save_snapshot(snap, identity_surface(build_context(config)))
    assert run().findings == []

    # 3. identity drift without a version bump -> flagged as such
    spec.write_text(spec.read_text().replace(
        "return {'kind': self.kind}",
        "return {'kind': self.kind, 'load': 0.5}",
    ))
    report = run()
    assert any("without a CACHE_VERSION/SPEC_VERSION bump" in f.message
               for f in report.findings)

    # 4. with a bump the drift is still surfaced (snapshot refresh due)
    #    but no longer blamed as an unbumped change
    spec.write_text(spec.read_text().replace(
        "SPEC_VERSION = 1", "SPEC_VERSION = 2"
    ))
    report = run()
    assert report.findings
    assert not any("without a CACHE_VERSION" in f.message
                   for f in report.findings)

    # 5. refreshing the snapshot settles it
    save_snapshot(snap, identity_surface(build_context(config)))
    assert run().findings == []
