"""Batched multi-run engine: bit-parity, planning, and cache identity.

``repro.sim.batch.simulate_batch`` advances B independent array-engine
runs through shared kernel invocations; ``repro.perf.planner.
BatchPlanner`` decides which executor payloads ride together.  The whole
feature rests on one contract: **batching is a pure scheduling decision**.
Every run in a batch must equal its single-run array result bit for bit
(full ``SimResult`` equality, not a tolerance), keep its own RunSpec
fingerprint and cache entry, and differ only in the identity-neutral
``RunManifest.batch_size``/``batch_slot`` environment fields.  These
tests pin that contract across routing variants, seeds, batch shapes
(including ragged completion), the planner's grouping policy, and the
executor's fallback when the native kernel is unavailable.
"""

import pytest

from repro.perf.cache import SimCache, fingerprint
from repro.perf.executor import SimTask, SweepExecutor
from repro.perf.planner import BatchPlanner
from repro.sim import SimParams
from repro.sim.batch import BatchUnsupported, simulate_batch
from repro.spec import RunSpec
from repro.topology import Dragonfly
from repro.traffic.patterns import UniformRandom

TOPO = Dragonfly(2, 4, 2, 5)
ROUTINGS = ["min", "vlb", "ugal-l", "ugal-g", "par"]


def _spec(routing, *, seed=0, load=0.2, window=80, batch=0):
    return RunSpec.from_objects(
        TOPO,
        UniformRandom(TOPO),
        load,
        routing=routing,
        params=SimParams(
            window_cycles=window, engine="array", batch=batch
        ),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Bit-parity: batched == single-run array, full SimResult equality
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("routing", ROUTINGS)
def test_batched_matches_single(routing):
    """Three seeds per variant ride one batch; every result equals its
    single-run form (SimResult equality covers every measured field)."""
    specs = [_spec(routing, seed=seed) for seed in (0, 1, 2)]
    batched = simulate_batch(specs)
    singles = [spec.run() for spec in specs]
    assert batched == singles


@pytest.mark.parametrize("routing", ["min", "ugal-l"])
def test_batched_matches_single_at_high_load(routing):
    """Saturation exercises source-queue caps and deep backpressure --
    the regime where injection filtering could desync RNG streams."""
    specs = [_spec(routing, seed=seed, load=0.9) for seed in (0, 1)]
    assert simulate_batch(specs) == [spec.run() for spec in specs]


def test_batch_size_invariance():
    """How runs are grouped into batches never shows in the results:
    one batch of four == two batches of two == four singles."""
    specs = [_spec("min", seed=seed) for seed in range(4)]
    whole = simulate_batch(specs)
    halves = simulate_batch(specs[:2]) + simulate_batch(specs[2:])
    singles = [spec.run() for spec in specs]
    assert whole == halves == singles


def test_ragged_completion():
    """Members with different windows and loads finish at different
    cycles; survivors must advance identically after each compaction."""
    specs = [
        _spec("min", seed=0, window=60, load=0.1),
        _spec("min", seed=1, window=140, load=0.3),
        _spec("min", seed=2, window=90, load=0.2),
    ]
    batched = simulate_batch(specs)
    assert batched == [spec.run() for spec in specs]
    for slot, result in enumerate(batched):
        assert result.manifest.batch_size == 3
        assert result.manifest.batch_slot == slot


def test_single_run_manifest_has_no_batch_fields():
    result = _spec("min").run()
    assert result.manifest.batch_size is None
    assert result.manifest.batch_slot is None


def test_incompatible_specs_rejected():
    """Compatibility contract: topology and routing must match."""
    with pytest.raises(BatchUnsupported):
        simulate_batch([_spec("min"), _spec("ugal-l")])


def test_unsupported_without_native_kernel(monkeypatch):
    """No native kernel -> the batch path refuses rather than silently
    running a scalar lockstep (callers fall back to per-run)."""
    monkeypatch.setenv("REPRO_ARRAYNET_NATIVE", "0")
    with pytest.raises(BatchUnsupported):
        simulate_batch([_spec("min", seed=0), _spec("min", seed=1)])


# ---------------------------------------------------------------------------
# Identity: the batch knob never reaches fingerprints or cache keys
# ---------------------------------------------------------------------------
def test_fingerprint_ignores_batch_knob():
    fps = {_spec("min", batch=batch).fingerprint() for batch in (0, 1, 8)}
    assert len(fps) == 1
    cache_keys = {
        fingerprint(
            TOPO,
            UniformRandom(TOPO),
            0.2,
            routing="min",
            policy=None,
            params=SimParams(window_cycles=80, engine="array", batch=b),
            seed=0,
        )
        for b in (0, 1, 8)
    }
    assert len(cache_keys) == 1


def test_cache_sharing_batched_and_single(tmp_path):
    """A batched run warms the cache for the single-run path and vice
    versa: both sides key each run by its own RunSpec fingerprint."""

    def tasks(seeds):
        return [
            SimTask(
                TOPO,
                UniformRandom(TOPO),
                0.2,
                routing="min",
                params=SimParams(window_cycles=80, engine="array"),
                seed=seed,
            )
            for seed in seeds
        ]

    cache = SimCache(str(tmp_path))
    with SweepExecutor(jobs=1, cache=cache) as batched_exec:
        stored = batched_exec.run(tasks(range(3)))
        assert batched_exec.cache_hits == 0
    assert all(r.manifest.batch_size == 3 for r in stored)

    with SweepExecutor(jobs=1, cache=cache, batch=1) as single_exec:
        hits = single_exec.run(tasks(range(3)))
        assert single_exec.cache_hits == 3
    assert hits == stored

    # and the reverse direction: single-run entries feed a batched sweep
    with SweepExecutor(jobs=1, cache=cache, batch=1) as single_exec:
        fresh = single_exec.run(tasks(range(3, 5)))
    with SweepExecutor(jobs=1, cache=cache) as batched_exec:
        again = batched_exec.run(tasks(range(3, 5)))
        assert batched_exec.cache_hits == 2
    assert again == fresh


# ---------------------------------------------------------------------------
# BatchPlanner policy
# ---------------------------------------------------------------------------
def test_planner_eligibility():
    assert BatchPlanner.eligible(_spec("min"))
    # adaptive variants keep the single-run path (measured neutral to
    # negative under batching -- see the planner docstring)
    assert not BatchPlanner.eligible(_spec("ugal-l"))
    # per-spec opt-out
    assert not BatchPlanner.eligible(_spec("min", batch=1))
    # live-object tasks cannot cross simulate_batch's validation
    assert not BatchPlanner.eligible(object())
    # explicit legacy-oracle requests are never batched
    legacy = _spec("min").replace(
        params=SimParams(window_cycles=80, engine="legacy")
    )
    assert not BatchPlanner.eligible(legacy)


def test_planner_groups_compatible_specs_only():
    other_topo = Dragonfly(2, 4, 2, 3)
    other = RunSpec.from_objects(
        other_topo,
        UniformRandom(other_topo),
        0.2,
        routing="min",
        params=SimParams(window_cycles=80, engine="array"),
        seed=0,
    )
    payloads = [
        _spec("min", seed=0),
        _spec("ugal-l", seed=0),
        _spec("min", seed=1),
        other,
    ]
    units = BatchPlanner().plan(payloads)
    assert [u.indices for u in units] == [[0, 2], [1], [3]]
    assert [u.batched for u in units] == [True, False, False]


def test_planner_chunks_and_honours_hints():
    # a member's params.batch hint lowers the whole group's cap
    payloads = [
        _spec("min", seed=seed, batch=2 if seed == 0 else 0)
        for seed in range(5)
    ]
    units = BatchPlanner().plan(payloads)
    assert [u.indices for u in units] == [[0, 1], [2, 3], [4]]

    # a process pool spreads one big group across the workers
    payloads = [_spec("min", seed=seed) for seed in range(8)]
    units = BatchPlanner(jobs=4).plan(payloads)
    assert [len(u.indices) for u in units] == [2, 2, 2, 2]

    # max_batch=1 degenerates to the historical per-payload stream
    units = BatchPlanner(max_batch=1).plan(payloads)
    assert [u.indices for u in units] == [[i] for i in range(8)]
    assert not any(u.batched for u in units)


def test_planner_covers_every_index_once():
    payloads = [
        _spec("min", seed=seed) if seed % 2 == 0 else _spec("par", seed=seed)
        for seed in range(9)
    ]
    units = BatchPlanner(max_batch=3).plan(payloads)
    covered = sorted(i for u in units for i in u.indices)
    assert covered == list(range(9))


# ---------------------------------------------------------------------------
# Executor integration
# ---------------------------------------------------------------------------
def _min_tasks(seeds, window=80):
    return [
        SimTask(
            TOPO,
            UniformRandom(TOPO),
            0.2,
            routing="min",
            params=SimParams(window_cycles=window, engine="array"),
            seed=seed,
        )
        for seed in seeds
    ]


def test_executor_serial_path_batches():
    """jobs=1 sweeps get the batched path too (the planner runs before
    the pool decision), and results match per-task execution."""
    from repro.perf.executor import run_task

    tasks = _min_tasks(range(4))
    with SweepExecutor(jobs=1) as executor:
        results = executor.run(tasks)
    assert all(r.manifest.batch_size == 4 for r in results)
    assert results == [run_task(t) for t in tasks]


def test_executor_trace_marks_batched_units():
    from repro.obs import Tracer

    tracer = Tracer()
    tasks = _min_tasks(range(3)) + [
        SimTask(
            TOPO,
            UniformRandom(TOPO),
            0.2,
            routing="ugal-l",
            params=SimParams(window_cycles=80, engine="array"),
            seed=0,
        )
    ]
    with SweepExecutor(jobs=1, tracer=tracer) as executor:
        executor.run(tasks)
    finished = [e for e in tracer.events if e["type"] == "task_finished"]
    assert [e["batched"] for e in sorted(finished, key=lambda e: e["index"])] \
        == [True, True, True, False]


def test_executor_batch_knob_disables(monkeypatch):
    tasks = _min_tasks(range(3))
    with SweepExecutor(jobs=1, batch=1) as executor:
        results = executor.run(tasks)
    assert all(r.manifest.batch_size is None for r in results)
    # the environment default wires through the same knob
    monkeypatch.setenv("REPRO_BATCH", "1")
    with SweepExecutor(jobs=1) as executor:
        results = executor.run(_min_tasks(range(2)))
    assert all(r.manifest.batch_size is None for r in results)


def test_executor_falls_back_without_native(monkeypatch):
    """BatchUnsupported inside the worker degrades to per-run execution
    with identical results -- planning is always safe."""
    monkeypatch.setenv("REPRO_ARRAYNET_NATIVE", "0")
    tasks = _min_tasks(range(3), window=60)
    with SweepExecutor(jobs=1) as executor:
        results = executor.run(tasks)
    assert all(r.manifest.batch_size is None for r in results)
    monkeypatch.delenv("REPRO_ARRAYNET_NATIVE")
    assert results == [spec.run() for spec in
                       (t.payload() for t in tasks)]


def test_replicate_matches_seed_loop():
    """replicate() now routes through the executor's batched path; its
    aggregates must still come from bit-identical per-seed results."""
    from repro.sim.engine import simulate
    from repro.sim.replication import replicate

    params = SimParams(window_cycles=60, engine="array")
    stats = replicate(
        TOPO,
        lambda seed: UniformRandom(TOPO),
        0.2,
        routing="min",
        params=params,
        seeds=range(3),
    )
    singles = [
        simulate(TOPO, UniformRandom(TOPO), 0.2, routing="min",
                 params=params, seed=seed)
        for seed in range(3)
    ]
    expected = sum(r.avg_latency for r in singles) / 3
    assert stats["latency"].mean == pytest.approx(expected, abs=0, rel=0)
