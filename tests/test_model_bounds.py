"""Tests for the closed-form capacity bounds, cross-validated against the
LP model (the LP should achieve the analytic bound exactly for symmetric
shift demand)."""

import pytest

from repro.model import PathStatsCache, model_throughput
from repro.model.bounds import (
    min_only_shift_bound,
    optimal_min_fraction,
    shift_saturation_bound,
    uniform_random_bound,
)
from repro.routing.pathset import AllVlbPolicy
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom


class TestClosedForms:
    def test_paper_topology_values(self):
        # dfly(4,8,4,9): (a*h + m) / (2*a*p) = 36/64
        t = Dragonfly(4, 8, 4, 9)
        assert shift_saturation_bound(t) == pytest.approx(0.5625)
        assert min_only_shift_bound(t) == pytest.approx(4 / 32)
        assert optimal_min_fraction(t) == pytest.approx(2 / 9)

    def test_g33_bound(self):
        t = Dragonfly(4, 8, 4, 33)
        assert shift_saturation_bound(t) == pytest.approx(33 / 64)
        assert min_only_shift_bound(t) == pytest.approx(1 / 32)

    def test_large_topology_bound(self):
        t = Dragonfly(13, 26, 13, 27)
        assert shift_saturation_bound(t) == pytest.approx(351 / 676)

    def test_bound_grows_with_link_multiplicity(self):
        # same group structure, fewer groups -> more links per pair ->
        # higher shift capacity
        bounds = [
            shift_saturation_bound(Dragonfly(4, 8, 4, g))
            for g in (33, 17, 9, 5)
        ]
        assert bounds == sorted(bounds)

    def test_uniform_bound_balanced_is_injection_limited(self):
        # balanced dragonfly a = 2p = 2h: UR is injection-limited (1.0-ish)
        t = Dragonfly(4, 8, 4, 9)
        assert uniform_random_bound(t) == 1.0

    def test_uniform_bound_underprovisioned_globals(self):
        # h < p: global channels can bind below injection rate
        t = Dragonfly(4, 4, 1, 5)
        assert uniform_random_bound(t) < 1.0


class TestLpAchievesBounds:
    @pytest.mark.parametrize("args", [(2, 4, 2, 9), (2, 4, 2, 3)])
    def test_lp_matches_shift_bound(self, args):
        topo = Dragonfly(*args)
        demand = Shift(topo, 1, 0).demand_matrix()
        res = model_throughput(
            topo, demand, policy=AllVlbPolicy(),
            cache=PathStatsCache(topo),
        )
        assert res.throughput == pytest.approx(
            shift_saturation_bound(topo), rel=1e-3
        )
        assert res.min_fraction == pytest.approx(
            optimal_min_fraction(topo), rel=0.05
        )

    def test_lp_min_only_matches_bound(self):
        topo = Dragonfly(2, 4, 2, 9)
        demand = Shift(topo, 1, 0).demand_matrix()
        res = model_throughput(
            topo, demand, weight_fn=lambda l1, l2: 0.0,
            cache=PathStatsCache(topo),
        )
        assert res.throughput == pytest.approx(
            min_only_shift_bound(topo), rel=1e-3
        )

    def test_lp_never_exceeds_bound(self):
        # the bound is an upper bound for every candidate set
        from repro.routing.pathset import HopClassPolicy

        topo = Dragonfly(2, 4, 2, 3)
        cache = PathStatsCache(topo)
        demand = Shift(topo, 1, 0).demand_matrix()
        bound = shift_saturation_bound(topo)
        for pol in (HopClassPolicy(3), HopClassPolicy(4), AllVlbPolicy()):
            res = model_throughput(topo, demand, policy=pol, cache=cache)
            assert res.throughput <= bound + 1e-6

    def test_lp_ur_near_unity_balanced(self):
        topo = Dragonfly(2, 4, 2, 9)
        res = model_throughput(
            topo,
            UniformRandom(topo).demand_matrix(),
            policy=AllVlbPolicy(),
            cache=PathStatsCache(topo),
        )
        assert res.throughput > 0.9
