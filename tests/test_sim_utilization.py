"""Tests for the channel-utilization instrumentation."""

import pytest

from repro.routing.pathset import StrategicFiveHopPolicy
from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


@pytest.fixture(scope="module")
def fast():
    return SimParams(window_cycles=200)


class TestUtilization:
    def test_fields_present_and_bounded(self, topo, fast):
        r = simulate(topo, UniformRandom(topo), 0.2, params=fast, seed=1)
        util = r.channel_utilization
        assert set(util) == {
            "local_mean", "local_max", "global_mean", "global_max"
        }
        for v in util.values():
            assert 0.0 <= v <= 1.0 + 1e-9  # 1 flit/cycle channel capacity

    def test_zero_load_zero_utilization(self, topo, fast):
        r = simulate(topo, UniformRandom(topo), 0.0, params=fast)
        assert r.channel_utilization["global_max"] == 0.0
        assert r.channel_utilization["local_max"] == 0.0

    def test_adversarial_min_saturates_direct_links(self, topo, fast):
        # MIN routing under shift: the direct global channels run at ~100%
        r = simulate(
            topo, Shift(topo, 2, 0), 0.4, routing="min", params=fast, seed=1
        )
        assert r.channel_utilization["global_max"] > 0.9

    def test_utilization_scales_with_load(self, topo, fast):
        lo = simulate(topo, UniformRandom(topo), 0.1, params=fast, seed=1)
        hi = simulate(topo, UniformRandom(topo), 0.4, params=fast, seed=1)
        assert (
            hi.channel_utilization["global_mean"]
            > lo.channel_utilization["global_mean"]
        )

    def test_vlb_spreads_load_more_evenly_than_min(self, topo, fast):
        pattern = Shift(topo, 2, 0)
        r_min = simulate(
            topo, pattern, 0.1, routing="min", params=fast, seed=1
        )
        r_vlb = simulate(
            topo, pattern, 0.1, routing="vlb", params=fast, seed=1
        )
        ratio_min = r_min.channel_utilization["global_max"] / max(
            r_min.channel_utilization["global_mean"], 1e-9
        )
        ratio_vlb = r_vlb.channel_utilization["global_max"] / max(
            r_vlb.channel_utilization["global_mean"], 1e-9
        )
        assert ratio_vlb < ratio_min

    def test_tvlb_balanced_on_dense_topology(self, fast):
        # T-VLB keeps global channels reasonably balanced (the property
        # the Step-2 balance check protects)
        topo = Dragonfly(2, 4, 2, 3)
        r = simulate(
            topo, Shift(topo, 1, 0), 0.2, routing="t-ugal-l",
            policy=StrategicFiveHopPolicy("2+3"), params=fast, seed=1,
        )
        util = r.channel_utilization
        assert util["global_max"] <= 6 * max(util["global_mean"], 1e-9)
