"""Tests for the channel-dependency-graph builder and deadlock certifier."""

import numpy as np
import pytest

from repro.routing.paths import Channel, Path
from repro.routing.pathset import (
    AllVlbPolicy,
    ExcludingPolicy,
    ExplicitPathSet,
    HopClassPolicy,
    StrategicFiveHopPolicy,
    _mix,
)
from repro.routing.vlb import VlbDescriptor
from repro.topology import Dragonfly
from repro.topology.cascade import CascadeDragonfly
from repro.verify import (
    ChannelDependencyGraph,
    build_cdg,
    certify_deadlock_freedom,
)
from repro.verify.cdg import VC_SCHEMES, _mix_vec


@pytest.fixture(scope="module")
def paper_topo():
    """The paper's dfly(4,8,4,9): 72 switches, 4 links per group pair."""
    return Dragonfly(4, 8, 4, 9)


@pytest.fixture(scope="module")
def small_topo():
    return Dragonfly(2, 4, 2, 5)


# ---------------------------------------------------------------------------
# Graph primitives
# ---------------------------------------------------------------------------
class TestGraphPrimitives:
    def test_channel_roundtrip(self, small_topo):
        g = ChannelDependencyGraph(small_topo, "won")
        channels = [Channel(0, 1)]
        for link in small_topo.global_links[:6]:
            channels.append(Channel(link.switch_a, link.switch_b, link.slot))
            channels.append(Channel(link.switch_b, link.switch_a, link.slot))
        for ch in channels:
            assert g.decode_channel(g.encode_channel(ch)) == ch

    def test_parallel_links_stay_distinct(self, small_topo):
        # dfly(2,4,2,5) has 2 links per group pair; both directions of both
        # must encode to four distinct ids
        g = ChannelDependencyGraph(small_topo, "won")
        links = small_topo.links_between_groups(0, 1)
        assert len(links) == 2
        ids = {
            g.encode_channel(Channel(ln.endpoint_in(a), ln.endpoint_in(b), ln.slot))
            for ln in links
            for a, b in ((0, 1), (1, 0))
        }
        assert len(ids) == 4

    def test_node_roundtrip(self, small_topo):
        g = ChannelDependencyGraph(small_topo, "won")
        ch = Channel(2, 3)
        node = g.encode_channel(ch) * g.num_levels + 3
        assert g.decode_node(node) == (ch, 3)

    def test_unknown_scheme_rejected(self, small_topo):
        with pytest.raises(ValueError, match="unknown vc scheme"):
            ChannelDependencyGraph(small_topo, "rainbow")
        assert set(VC_SCHEMES) == {"won", "perhop", "none"}

    def test_add_path_edges(self, small_topo):
        g = ChannelDependencyGraph(small_topo, "won")
        # 0 -> 1 -> (global) -> dst-group switch
        links = small_topo.links_between_groups(0, 1)
        x, y = links[0].endpoint_in(0), links[0].endpoint_in(1)
        src = next(s for s in range(4) if s != x)
        path = Path((src, x, y), (-1, links[0].slot))
        g.add_path(path, [0, 0])
        assert g.num_paths == 1
        assert g.num_edges == 1
        deps = list(g.iter_dependencies())
        assert deps == [((Channel(src, x), 0), (Channel(x, y, links[0].slot), 0))]
        assert g.num_nodes == 2

    def test_add_path_vc_length_mismatch(self, small_topo):
        g = ChannelDependencyGraph(small_topo, "won")
        with pytest.raises(ValueError, match="VC assignments"):
            g.add_path(Path((0, 1), (-1,)), [0, 1])


class TestCycleDetection:
    def test_empty_graph_acyclic(self, small_topo):
        assert ChannelDependencyGraph(small_topo, "won").find_cycle() is None

    def test_hand_built_cycle_found(self, small_topo):
        # three local channels of group 0 waiting on each other at vc 0
        g = ChannelDependencyGraph(small_topo, "won")
        ring = [Channel(0, 1), Channel(1, 2), Channel(2, 0)]
        for a, b in zip(ring, ring[1:] + ring[:1]):
            g.add_dependency(a, 0, b, 0)
        # an acyclic appendix must not confuse the search
        g.add_dependency(Channel(3, 0), 0, ring[0], 0)
        cycle = g.find_cycle()
        assert cycle is not None
        assert len(cycle) == 3
        assert {ch for ch, _vc in cycle} == set(ring)
        assert all(vc == 0 for _ch, vc in cycle)

    def test_cycle_is_in_traversal_order(self, small_topo):
        g = ChannelDependencyGraph(small_topo, "won")
        ring = [Channel(0, 1), Channel(1, 2), Channel(2, 3), Channel(3, 0)]
        for a, b in zip(ring, ring[1:] + ring[:1]):
            g.add_dependency(a, 1, b, 1)
        cycle = g.find_cycle()
        deps = set(g.iter_dependencies())
        for i, node in enumerate(cycle):
            assert (node, cycle[(i + 1) % len(cycle)]) in deps

    def test_vc_levels_separate_nodes(self, small_topo):
        # same channels at different vc levels do NOT close a cycle
        g = ChannelDependencyGraph(small_topo, "won")
        g.add_dependency(Channel(0, 1), 0, Channel(1, 0), 0)
        g.add_dependency(Channel(1, 0), 1, Channel(0, 1), 1)
        assert g.find_cycle() is None


# ---------------------------------------------------------------------------
# Certification of real configurations
# ---------------------------------------------------------------------------
class TestPaperCertification:
    def test_full_vlb_won_certified(self, paper_topo):
        res = certify_deadlock_freedom(paper_topo, scheme="won", routing="par")
        assert res.certified and res.deadlock_free and res.exhaustive
        assert res.cycle is None
        # MIN: one per link per inter-group pair; VLB: every
        # (mid switch, slot1, slot2) triple, incl. intra-group pairs
        min_paths = 9 * 8 * (8 * 8) * 4
        vlb_inter = 9 * 8 * 7 * 8**3 * 4**2
        vlb_intra = 9 * 8 * (8 * 7 * 8) * 4**2
        assert res.num_paths == min_paths + vlb_inter + vlb_intra
        assert "certified" in res.describe()

    def test_full_vlb_perhop_certified(self, paper_topo):
        res = certify_deadlock_freedom(paper_topo, scheme="perhop", routing="par")
        assert res.certified
        # perhop spreads hops over more levels than won
        assert res.num_nodes > 0

    def test_tvlb_hopclass_certified(self, paper_topo):
        res = certify_deadlock_freedom(
            paper_topo, HopClassPolicy(4, 0.1, seed=3), scheme="won",
            routing="t-par",
        )
        assert res.certified
        # the restricted set admits strictly fewer paths than full VLB
        assert res.num_paths < 4_663_296

    def test_none_scheme_reports_concrete_cycle(self, paper_topo):
        # without VC protection the local channels alone deadlock; the
        # counterexample must be a real closed dependency chain
        res = certify_deadlock_freedom(paper_topo, scheme="none", routing="par")
        assert not res.deadlock_free and not res.certified
        assert "DEADLOCK RISK" in res.describe()
        cycle = res.cycle
        assert len(cycle) >= 2
        for (ch, vc), (nxt, nvc) in zip(cycle, cycle[1:] + cycle[:1]):
            assert vc == 0 and nvc == 0
            assert ch.dst == nxt.src or ch.is_global or nxt.is_global


class TestBuilderEquivalence:
    POLICIES = [
        AllVlbPolicy(),
        HopClassPolicy(4, 0.0),
        HopClassPolicy(4, 0.37, seed=7),
        HopClassPolicy(5, 0.5, seed=1),
        StrategicFiveHopPolicy("2+3"),
        StrategicFiveHopPolicy("3+2"),
    ]

    @pytest.mark.parametrize("scheme", ["won", "perhop", "none"])
    @pytest.mark.parametrize("routing", ["ugal-l", "par"])
    def test_fast_matches_generic_all_vlb(self, small_topo, scheme, routing):
        fast = build_cdg(
            small_topo, scheme=scheme, routing=routing, method="fast"
        )
        generic = build_cdg(
            small_topo, scheme=scheme, routing=routing, method="generic"
        )
        assert fast._edges == generic._edges

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.describe())
    def test_fast_matches_generic_policies(self, small_topo, policy):
        fast = build_cdg(small_topo, policy, scheme="won", method="fast")
        generic = build_cdg(small_topo, policy, scheme="won", method="generic")
        assert fast._edges == generic._edges

    def test_fast_matches_generic_excluding(self, small_topo):
        excluded_desc = next(
            AllVlbPolicy().iter_descriptors(small_topo, 0, 8)
        )
        link = small_topo.links_between_groups(0, 1)[0]
        policy = ExcludingPolicy(
            base=HopClassPolicy(5, 1.0),
            excluded_channels=frozenset(
                {
                    Channel(0, 1),
                    Channel(link.endpoint_in(0), link.endpoint_in(1), link.slot),
                }
            ),
            excluded_descriptors=frozenset({(0, 8, excluded_desc)}),
        )
        fast = build_cdg(small_topo, policy, scheme="won", method="fast")
        generic = build_cdg(small_topo, policy, scheme="won", method="generic")
        assert fast._edges == generic._edges

    def test_par_adds_fragment_dependencies(self, small_topo):
        ugal = build_cdg(small_topo, scheme="won", routing="ugal-l")
        par = build_cdg(small_topo, scheme="won", routing="par")
        assert ugal._edges < par._edges  # strict superset

    def test_mix_vec_matches_scalar(self):
        rng = np.random.default_rng(0)
        cols = [rng.integers(0, 500, size=64) for _ in range(5)]
        for seed in (0, 7, 123456789):
            vec = _mix_vec(seed, *[c.astype(np.int64) for c in cols])
            for i in range(64):
                src, dst, mid, s1, s2 = (int(c[i]) for c in cols)
                scalar = _mix(seed, src, dst, VlbDescriptor(mid, s1, s2))
                assert int(vec[i]) == scalar


class TestBuilderModes:
    def test_sampling_clears_exhaustive(self, small_topo):
        res = certify_deadlock_freedom(small_topo, max_pairs=10)
        assert res.deadlock_free
        assert not res.exhaustive and not res.certified
        assert "sampled" in res.describe()

    def test_explicit_pathset_uses_generic(self, small_topo):
        policy = ExplicitPathSet.from_policy(
            small_topo, HopClassPolicy(4, 0.0), pairs=[(0, 8), (8, 0)]
        )
        res = certify_deadlock_freedom(small_topo, policy, scheme="won")
        assert res.deadlock_free and res.exhaustive

    def test_fast_method_rejects_explicit_pathset(self, small_topo):
        with pytest.raises(ValueError, match="vectorized"):
            build_cdg(small_topo, ExplicitPathSet(), method="fast")

    def test_fast_method_rejects_sparse_groups(self):
        casc = CascadeDragonfly(1, 4, 1, 3, rows=2, cols=2)
        with pytest.raises(ValueError, match="fully connected"):
            build_cdg(casc, method="fast")

    def test_unknown_method_rejected(self, small_topo):
        with pytest.raises(ValueError, match="unknown method"):
            build_cdg(small_topo, method="telepathy")

    def test_cascade_certified_via_generic(self):
        # sparse intra-group topology: auto mode must pick the generic
        # builder and still certify both schemes under PAR
        casc = CascadeDragonfly(1, 4, 1, 3, rows=2, cols=2)
        for scheme in ("won", "perhop"):
            res = certify_deadlock_freedom(casc, scheme=scheme, routing="par")
            assert res.certified, res.describe()
