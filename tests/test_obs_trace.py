"""Tracer round trips, Chrome export, capture(), executor lifecycles."""

import json

import pytest

from repro.obs import ObsConfig, Tracer, capture, render_summary
from repro.perf import SimTask, SweepExecutor
from repro.perf.cache import SimCache
from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic.patterns import UniformRandom


def _fake_clock(start=1000.0, step=0.25):
    state = {"t": start - step}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


SMALL = dict(window_cycles=80, warmup_windows=1)


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


class TestJsonlRoundTrip:
    def test_record_save_load(self, tmp_path):
        tracer = Tracer(clock=_fake_clock())
        tracer.record("task_finished", kind="sim", index=0, duration=0.5)
        tracer.record("cache_hit", kind="sim", index=1, label="min@0.1")
        path = str(tmp_path / "trace.jsonl")
        tracer.save_jsonl(path)
        loaded = Tracer.load_jsonl(path)
        assert loaded.events == tracer.events

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "cache_hit", "t": 1.0}\n\n')
        assert len(Tracer.load_jsonl(str(path))) == 1


class TestChromeExport:
    def _traced(self):
        tracer = Tracer(clock=_fake_clock())
        tracer.record("batch_start", kind="sim", tasks=2)
        tracer.record("cache_hit", kind="sim", index=0, label="min@0.05")
        tracer.record(
            "task_finished",
            kind="sim",
            index=1,
            label="min@0.1",
            worker=4242,
            started=1000.5,
            duration=0.125,
            mode="serial",
        )
        tracer.record(
            "run_start", run="seed0-load0.1", cycle=0, kind="sim"
        )
        tracer.record(
            "engine_sample",
            run="seed0-load0.1",
            cycle=40,
            backlog=3,
            in_flight=17,
            vc_occupancy=[1, 2],
            util={"local_mean": 0.25, "global_max": 0.5},
        )
        tracer.record(
            "run_end", run="seed0-load0.1", cycle=80, kind="sim"
        )
        tracer.record(
            "batch_end",
            kind="sim",
            cache_hits=1,
            computed=1,
            wall_seconds=0.5,
        )
        return tracer

    def test_event_mapping(self):
        doc = self._traced().to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        json.dumps(doc)  # must be JSON-clean

        slices = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "min@0.1" for e in slices)
        task = next(e for e in slices if e["name"] == "min@0.1")
        assert task["tid"] == 4242
        assert task["dur"] == pytest.approx(0.125e6)
        assert any(e["name"].startswith("batch:") for e in slices)

        instants = [e for e in events if e["ph"] == "i"]
        assert any(e["name"].startswith("cache-hit") for e in instants)

        counters = [e for e in events if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert {"backlog", "vc_occupancy", "utilization"} <= names
        backlog = next(e for e in counters if e["name"] == "backlog")
        assert backlog["ts"] == 40.0  # engine time = cycle number
        assert backlog["pid"] >= 100  # engine runs on their own rows

    def test_export_chrome_writes_file(self, tmp_path):
        path = str(tmp_path / "out" / "trace.json")
        self._traced().export_chrome(path)
        doc = json.load(open(path))
        assert doc["traceEvents"]

    def test_summary_aggregates(self):
        summary = self._traced().summary()
        assert summary["cache_hits"] == 1
        assert summary["computed"] == 1
        assert summary["cache_hit_rate"] == 0.5
        assert summary["engine_samples"] == 1
        assert summary["max_backlog"] == 3
        text = render_summary(summary)
        assert "50% hit rate" in text
        assert "max backlog 3" in text


class TestEngineCapture:
    def test_capture_collects_engine_samples(self, topo):
        pattern = UniformRandom(topo)
        params = SimParams(**SMALL, obs=ObsConfig(sample_every=20))
        with capture() as tracer:
            simulate(topo, pattern, 0.1, params=params, seed=3)
        types = [e["type"] for e in tracer.events]
        assert types[0] == "run_start"
        assert types[-1] == "run_end"
        assert types.count("engine_sample") > 0
        sample = next(
            e for e in tracer.events if e["type"] == "engine_sample"
        )
        assert set(sample) >= {
            "run", "cycle", "backlog", "in_flight", "vc_occupancy", "util"
        }

    def test_no_capture_no_side_effects(self, topo):
        pattern = UniformRandom(topo)
        params = SimParams(**SMALL, obs=ObsConfig(sample_every=20))
        simulate(topo, pattern, 0.1, params=params, seed=3)  # no crash

    def test_trace_dir_writes_per_run_files(self, topo, tmp_path):
        pattern = UniformRandom(topo)
        params = SimParams(
            **SMALL,
            obs=ObsConfig(sample_every=20, trace_dir=str(tmp_path)),
        )
        simulate(topo, pattern, 0.1, params=params, seed=3)
        files = list(tmp_path.glob("engine-*.jsonl"))
        assert len(files) == 1
        loaded = Tracer.load_jsonl(str(files[0]))
        assert any(e["type"] == "engine_sample" for e in loaded.events)


class TestExecutorLifecycle:
    def test_batch_and_task_events(self, topo, tmp_path):
        pattern = UniformRandom(topo)
        params = SimParams(**SMALL)
        tasks = [
            SimTask(topo, pattern, load, routing="min",
                    params=params, seed=1)
            for load in (0.05, 0.1)
        ]
        tracer = Tracer()
        cache = SimCache(str(tmp_path / "cache"))
        with SweepExecutor(jobs=1, cache=cache, tracer=tracer) as ex:
            first = ex.run(tasks)
        types = [e["type"] for e in tracer.events]
        assert types[0] == "batch_start"
        assert types[-1] == "batch_end"
        assert types.count("task_finished") == 2
        assert types.count("task_started") == 2
        assert types.count("task_submitted") == 2
        finished = [
            e for e in tracer.events if e["type"] == "task_finished"
        ]
        assert all(e["duration"] > 0 for e in finished)
        assert all(e["worker"] for e in finished)
        assert [e["index"] for e in finished] == [0, 1]

        # second batch: all cache hits, and results identical
        tracer2 = Tracer()
        with SweepExecutor(jobs=1, cache=cache, tracer=tracer2) as ex:
            second = ex.run(tasks)
        assert second == first
        types2 = [e["type"] for e in tracer2.events]
        assert types2.count("cache_hit") == 2
        assert types2.count("task_finished") == 0
        assert tracer2.summary()["cache_hit_rate"] == 1.0

    def test_executor_joins_active_capture(self, topo):
        pattern = UniformRandom(topo)
        task = SimTask(
            topo, pattern, 0.05, routing="min",
            params=SimParams(**SMALL), seed=1,
        )
        with capture() as tracer:
            with SweepExecutor(jobs=1) as ex:
                ex.run([task])
        types = [e["type"] for e in tracer.events]
        assert "batch_start" in types and "task_finished" in types
