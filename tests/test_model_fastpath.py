"""Parity and structural tests for the factored LP fast path.

The contract under test: ``FastModel`` / ``engine="fast"`` sweeps are a
pure performance refactor of the legacy per-solve assembly -- same
throughputs (to 1e-9) on the same inputs, plus the structural layers
(vectorized block builder, symmetry folding, ModelResult caching) each
verified against their slow reference.

``min_fraction`` parity is asserted at a documented looser tolerance:
the MIN/VLB split at the throughput optimum is a degenerate LP vertex
(many splits achieve the same lambda), and the fast path's permuted row
order can land HiGHS on a different optimal vertex.  Throughput -- the
objective, and the only field Step 1 consumes -- is tight.
"""

import warnings

import numpy as np
import pytest

from repro.core.datapoints import table1_datapoints
from repro.model import (
    BlockCache,
    FastModel,
    PairBlock,
    PathStatsCache,
    RotationSymmetry,
    model_throughput,
    step1_sweep,
)
from repro.model.fastpath import build_pair_block
from repro.model.pathstats import compute_pair_stats
from repro.routing.channels import ChannelIndex
from repro.routing.pathset import (
    AllVlbPolicy,
    ExcludingPolicy,
    ExplicitPathSet,
    HopClassPolicy,
)
from repro.topology import Dragonfly
from repro.traffic import Shift, type_1_set, type_2_set

SMALL = Dragonfly(2, 4, 2, 5)


def _assert_blocks_equal(a: PairBlock, b: PairBlock) -> None:
    assert a.min_count == b.min_count
    np.testing.assert_array_equal(a.min_idx, b.min_idx)
    np.testing.assert_array_equal(a.min_val, b.min_val)
    np.testing.assert_array_equal(a.counts, b.counts)
    np.testing.assert_array_equal(a.cls_id, b.cls_id)
    np.testing.assert_array_equal(a.cls_idx, b.cls_idx)
    np.testing.assert_array_equal(a.cls_val, b.cls_val)


class TestBlockBuilder:
    def test_vectorized_matches_enumeration(self):
        """The closed-form builder is bit-exact vs per-path enumeration."""
        chidx = ChannelIndex(SMALL)
        pairs = [(0, 5), (0, 4), (1, 18), (3, 12), (0, 2), (7, 6)]
        for src, dst in pairs:
            fast = build_pair_block(SMALL, chidx, src, dst)
            slow = PairBlock.from_stats(
                compute_pair_stats(SMALL, chidx, src, dst)
            )
            _assert_blocks_equal(fast, slow)

    def test_roundtrip_through_stats(self):
        chidx = ChannelIndex(SMALL)
        block = build_pair_block(SMALL, chidx, 0, 9)
        again = PairBlock.from_stats(block.to_stats())
        _assert_blocks_equal(block, again)


class TestSymmetry:
    def test_absolute_arrangement_has_no_rotations(self):
        # absolute global-link arrangement is not invariant under group
        # rotation; only the identity may be accepted
        topo = Dragonfly(2, 4, 2, 5, arrangement="absolute")
        sym = RotationSymmetry(topo, ChannelIndex(topo))
        assert sym.rotations == [0]
        assert sym.fold_factor == 1

    @pytest.mark.parametrize("arrangement", ["relative", "circulant"])
    def test_rotation_invariant_arrangements(self, arrangement):
        topo = Dragonfly(2, 4, 2, 5, arrangement=arrangement)
        sym = RotationSymmetry(topo, ChannelIndex(topo))
        assert sym.rotations == list(range(topo.g))

    @pytest.mark.parametrize("arrangement", ["relative", "circulant"])
    def test_folded_blocks_bit_exact(self, arrangement):
        topo = Dragonfly(2, 4, 2, 5, arrangement=arrangement)
        chidx = ChannelIndex(topo)
        folded = BlockCache(topo, chidx=chidx, symmetry="auto")
        direct = BlockCache(topo, chidx=chidx, symmetry="off")
        rng = np.random.default_rng(7)
        n = topo.num_switches
        for _ in range(25):
            src, dst = rng.integers(0, n, size=2)
            if src == dst:
                continue
            _assert_blocks_equal(
                folded.get(int(src), int(dst)),
                direct.get(int(src), int(dst)),
            )
        # folding must actually have happened for the test to mean much
        assert folded.folded > 0
        assert folded.built < direct.built

    def test_subsampled_pairs_never_folded(self):
        # descriptor subsampling is seeded per (seed, src, dst): an
        # orbit representative's subsample is NOT the pair's subsample
        topo = Dragonfly(2, 4, 2, 5, arrangement="relative")
        cache = BlockCache(topo, max_descriptors=10, symmetry="auto")
        cache.get(0, 9)
        cache.get(4, 13)  # same orbit as (0, 9) under rotation
        assert cache.folded == 0


class TestFastModelParity:
    @pytest.mark.parametrize("mode", ["uniform", "free"])
    def test_small_topology_parity(self, mode):
        cache = PathStatsCache(SMALL)
        fast = FastModel(SMALL)
        policies = [
            AllVlbPolicy(),
            HopClassPolicy(3, 0.0),
            HopClassPolicy(4, 0.5),
            HopClassPolicy(5, 0.25),
        ]
        patterns = [Shift(SMALL, 1, 0), Shift(SMALL, 2, 1)] + type_2_set(
            SMALL, count=1
        )
        for policy in policies:
            for pat in patterns:
                demand = pat.demand_matrix()
                ref = model_throughput(
                    SMALL, demand, policy=policy, cache=cache, mode=mode
                )
                got = fast.solve(demand, policy=policy, mode=mode)
                assert got.throughput == pytest.approx(
                    ref.throughput, abs=1e-9
                )
                # degenerate-vertex tolerance (see module docstring)
                assert got.min_fraction == pytest.approx(
                    ref.min_fraction, abs=2e-2
                )
                assert got.num_pairs == ref.num_pairs

    @pytest.mark.slow
    def test_table1_parity_paper_topology(self):
        """Every Table-1 datapoint, TYPE_1 + TYPE_2 sample, dfly(4,8,4,9)."""
        topo = Dragonfly(4, 8, 4, 9)
        grid = table1_datapoints(step=0.1)  # all 31 datapoints
        patterns = [type_1_set(topo)[11]] + type_2_set(topo, count=1)
        fast = step1_sweep(
            topo, patterns, grid, mode="free", engine="fast"
        )
        legacy = step1_sweep(
            topo, patterns, grid, mode="free", engine="legacy"
        )
        for f, l in zip(fast, legacy):
            assert f.label == l.label
            for a, b in zip(f.per_pattern, l.per_pattern):
                assert a == pytest.approx(b, abs=1e-9)

    def test_monotonic_flag_respected(self):
        # free mode without the paper's monotonicity rows over-estimates
        # (or matches) -- and the fast path must agree with legacy there
        cache = PathStatsCache(SMALL)
        fast = FastModel(SMALL)
        demand = Shift(SMALL, 1, 0).demand_matrix()
        policy = HopClassPolicy(4, 0.5)
        for mono in (True, False):
            ref = model_throughput(
                SMALL, demand, policy=policy, cache=cache, mode="free",
                monotonic=mono,
            )
            got = fast.solve(
                demand, policy=policy, mode="free", monotonic=mono
            )
            assert got.throughput == pytest.approx(ref.throughput, abs=1e-9)

    def test_cascade_falls_back_to_legacy(self):
        from repro.topology.cascade import CascadeDragonfly

        topo = CascadeDragonfly(p=2, a=6, h=2, g=3, rows=2, cols=3)
        fast = FastModel(topo)
        assert fast._fallback is not None
        demand = Shift(topo, 1, 0).demand_matrix()
        ref = model_throughput(topo, demand, mode="free")
        got = fast.solve(demand, mode="free")
        assert got.throughput == pytest.approx(ref.throughput, abs=1e-9)


class TestWeightsForPolicyRejection:
    def test_excluding_policy_rejected(self):
        from repro.model.lp_model import weights_for_policy

        policy = ExcludingPolicy(base=AllVlbPolicy())
        with pytest.raises(ValueError, match="class-weight"):
            weights_for_policy(policy)

    def test_explicit_pathset_rejected(self):
        from repro.model.lp_model import weights_for_policy

        with pytest.raises(ValueError, match="class-weight"):
            weights_for_policy(ExplicitPathSet())

    def test_unknown_policy_type_errors(self):
        from repro.model.lp_model import weights_for_policy
        from repro.routing.pathset import PathPolicy

        class Oddball(PathPolicy):
            def contains(self, topo, src, dst, desc):
                return True

            def describe(self):
                return "oddball"

        with pytest.raises(TypeError):
            weights_for_policy(Oddball())

    def test_model_evaluator_scores_unrepresentable_policy_low(self):
        # ExcludingPolicy is approximated by its base; ExplicitPathSet
        # has no base to fall back to, so it must score -1.0 instead of
        # raising out of Algorithm 1
        from repro.core.algorithm import model_evaluator

        evaluate = model_evaluator(SMALL, num_patterns=1)
        assert evaluate(ExplicitPathSet(), "explicit") == -1.0


class TestModelCache:
    def test_warm_cache_serves_model_results(self, tmp_path):
        from repro.perf import ModelTask, SimCache, SweepExecutor

        cache = SimCache(str(tmp_path))
        tasks = [
            ModelTask(
                topo=SMALL,
                pattern=Shift(SMALL, 1, 0),
                policy=HopClassPolicy(4, 0.5),
                mode="free",
            ),
            ModelTask(
                topo=SMALL,
                pattern=Shift(SMALL, 2, 0),
                policy=AllVlbPolicy(),
                mode="uniform",
            ),
        ]
        with SweepExecutor(jobs=1, cache=cache) as executor:
            cold = executor.run_models(tasks)
        assert cache.misses == len(tasks)
        with SweepExecutor(jobs=1, cache=cache) as executor:
            warm = executor.run_models(tasks)
        assert cache.hits == len(tasks)
        for c, w in zip(cold, warm):
            assert w.throughput == c.throughput
            assert w.min_fraction == c.min_fraction
            assert w.status == c.status
            assert w.num_pairs == c.num_pairs

    def test_kind_discriminator_isolates_records(self, tmp_path):
        # a model record must never deserialize as a sim result, even if
        # someone looks it up with the wrong accessor
        from repro.perf import ModelTask, SimCache, SweepExecutor

        cache = SimCache(str(tmp_path))
        task = ModelTask(
            topo=SMALL,
            pattern=Shift(SMALL, 1, 0),
            policy=AllVlbPolicy(),
        )
        with SweepExecutor(jobs=1, cache=cache) as executor:
            executor.run_models([task])
        key = task.key()
        assert key is not None
        assert cache.get_model(key) is not None
        assert cache.get(key) is None

    def test_model_spec_roundtrip(self):
        from repro.spec import ModelSpec

        spec = ModelSpec.from_objects(
            SMALL,
            Shift(SMALL, 1, 0),
            policy=HopClassPolicy(4, 0.5),
            mode="free",
            monotonic=False,
            max_descriptors=100,
            seed=3,
            engine="fast",
        )
        again = ModelSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()
        res_a = spec.solve()
        res_b = again.solve()
        assert res_a.throughput == res_b.throughput

    def test_engines_never_share_cache_entries(self):
        from repro.perf import ModelTask

        fast = ModelTask(
            topo=SMALL, pattern=Shift(SMALL, 1, 0), policy=AllVlbPolicy()
        )
        legacy = ModelTask(
            topo=SMALL,
            pattern=Shift(SMALL, 1, 0),
            policy=AllVlbPolicy(),
            engine="legacy",
        )
        assert fast.key() is not None
        assert fast.key() != legacy.key()


class TestJobsClamp:
    def test_oversubscription_logs_but_honours_request(self, caplog):
        import os

        from repro.perf import SweepExecutor

        cap = os.cpu_count() or 1
        with caplog.at_level("WARNING", logger="repro.perf.executor"):
            executor = SweepExecutor(jobs=cap + 1)
        assert any("oversubscribes" in r.message for r in caplog.records)
        assert executor.jobs == cap + 1
        executor.close()

    def test_within_capacity_is_silent(self, caplog):
        from repro.perf import SweepExecutor

        with caplog.at_level("WARNING", logger="repro.perf.executor"):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                executor = SweepExecutor(jobs=1)
        assert not caplog.records
        executor.close()
