"""Tests for the load-balance analysis and adjustment (Step 2)."""

import numpy as np
import pytest

from repro.core.balance import (
    balance_adjust,
    global_usage_probability,
    pair_usage_probability,
)
from repro.routing.channels import ChannelIndex
from repro.routing.pathset import (
    AllVlbPolicy,
    ExcludingPolicy,
    ExplicitPathSet,
    HopClassPolicy,
)
from repro.routing.vlb import enumerate_vlb_descriptors
from repro.topology import Dragonfly


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 3)


@pytest.fixture(scope="module")
def chidx(topo):
    return ChannelIndex(topo)


class TestUsageProbability:
    def test_probabilities_are_per_path_fractions(self, topo, chidx):
        probs = pair_usage_probability(topo, chidx, AllVlbPolicy(), 0, 8)
        assert np.all(probs >= 0)
        # sum over channels = average hops per path
        avg = AllVlbPolicy().average_hops(topo, 0, 8)
        assert probs.sum() == pytest.approx(avg)
        assert probs.max() <= 1.0

    def test_empty_policy_zero(self, topo, chidx):
        empty = ExplicitPathSet(paths={})
        probs = pair_usage_probability(topo, chidx, empty, 0, 8)
        assert probs.sum() == 0

    def test_global_is_mean_of_pairs(self, topo, chidx):
        pol = AllVlbPolicy()
        pairs = [(0, 8), (1, 9)]
        g = global_usage_probability(topo, chidx, pol, pairs)
        a = pair_usage_probability(topo, chidx, pol, 0, 8)
        b = pair_usage_probability(topo, chidx, pol, 1, 9)
        assert np.allclose(g, (a + b) / 2)


class TestBalanceAdjust:
    def test_balanced_policy_untouched(self, topo):
        # the full VLB set is symmetric: no adjustment expected at sane
        # thresholds
        pairs = [(0, 8), (1, 9), (4, 0)]
        adjusted, report = balance_adjust(
            topo, AllVlbPolicy(), pairs, local_factor=5.0, global_factor=5.0
        )
        assert adjusted is not None
        assert not report.adjusted
        assert isinstance(adjusted, AllVlbPolicy)

    def test_skewed_policy_gets_adjusted(self, topo):
        # Build a deliberately imbalanced explicit set: pair (0, 8) keeps
        # many copies of paths through one intermediate and one path
        # through others.
        descs = list(enumerate_vlb_descriptors(topo, 0, 8))
        mid0 = descs[0].mid
        skewed = [d for d in descs if d.mid == mid0] * 6 + descs[:1]
        policy = ExplicitPathSet(paths={(0, 8): skewed}, label="skewed")
        adjusted, report = balance_adjust(
            topo,
            policy,
            [(0, 8)],
            local_factor=1.3,
            min_remaining=1,
        )
        assert report.max_over_mean_local > 1.3
        if report.adjusted:
            assert isinstance(adjusted, ExcludingPolicy)

    def test_min_remaining_guard(self, topo):
        # With a huge min_remaining nothing may be removed.
        pairs = [(0, 8)]
        adjusted, report = balance_adjust(
            topo,
            HopClassPolicy(3),
            pairs,
            local_factor=1.01,
            global_factor=1.01,
            min_remaining=10**6,
        )
        assert report.removed_descriptors == 0
        assert not report.global_hot_channels

    def test_report_fields(self, topo):
        _adj, report = balance_adjust(topo, AllVlbPolicy(), [(0, 8)])
        assert report.max_over_mean_local >= 1.0
        assert report.max_over_mean_global >= 1.0
        assert isinstance(report.adjusted, bool)
