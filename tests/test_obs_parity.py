"""Observability must never change results, fingerprints, or cache keys."""

import dataclasses

import pytest

from repro.obs import ObsConfig, capture
from repro.perf import SimTask
from repro.sim import SimParams, simulate
from repro.spec import RunSpec
from repro.topology import Dragonfly
from repro.traffic.patterns import Shift, UniformRandom

SMALL = dict(window_cycles=120, warmup_windows=1)

FULL_OBS = ObsConfig(metrics=True, sample_every=25)


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


def _measurement_fields(result):
    """Every SimResult field except the provenance manifest."""
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name != "manifest"
    }


class TestEngineParity:
    @pytest.mark.parametrize("routing", ["min", "ugal-l"])
    def test_bit_identical_results(self, topo, routing):
        pattern = UniformRandom(topo)
        base = simulate(
            topo, pattern, 0.15, routing=routing,
            params=SimParams(**SMALL), seed=7,
        )
        with capture():
            traced = simulate(
                topo, pattern, 0.15, routing=routing,
                params=SimParams(**SMALL, obs=FULL_OBS), seed=7,
            )
        assert _measurement_fields(base) == _measurement_fields(traced)
        assert base == traced  # dataclass equality skips the manifest

    def test_parity_holds_for_adversarial_pattern(self, topo):
        base = simulate(
            topo, Shift(topo, 1), 0.2,
            params=SimParams(**SMALL), seed=11,
        )
        traced = simulate(
            topo, Shift(topo, 1), 0.2,
            params=SimParams(**SMALL, obs=FULL_OBS), seed=11,
        )
        assert _measurement_fields(base) == _measurement_fields(traced)


class TestFingerprintNeutrality:
    def test_identity_dict_drops_obs(self):
        assert "obs" not in SimParams(obs=FULL_OBS).identity_dict()
        assert (
            SimParams(**SMALL, obs=FULL_OBS).identity_dict()
            == SimParams(**SMALL).identity_dict()
        )

    def test_with_obs_round_trip(self):
        params = SimParams(**SMALL)
        traced = params.with_obs(FULL_OBS)
        assert traced.obs is FULL_OBS
        assert traced.with_obs(None) == params

    def test_runspec_fingerprint_unchanged(self, topo):
        pattern = UniformRandom(topo)

        def spec(params):
            return RunSpec.from_objects(
                topo, pattern, 0.1, routing="min", params=params, seed=1
            )

        plain = spec(SimParams(**SMALL))
        traced = spec(SimParams(**SMALL, obs=FULL_OBS))
        assert plain.fingerprint() == traced.fingerprint()
        assert "obs" not in plain.to_dict()["params"]

    def test_cache_key_unchanged(self, topo):
        pattern = UniformRandom(topo)

        def key(params):
            return SimTask(
                topo, pattern, 0.1, routing="min", params=params, seed=1
            ).key()

        assert key(SimParams(**SMALL)) is not None
        assert key(SimParams(**SMALL)) == key(
            SimParams(**SMALL, obs=FULL_OBS)
        )

    def test_spec_rejects_serialized_obs(self):
        from repro.spec import SpecError

        spec = RunSpec.from_objects(
            Dragonfly(2, 4, 2, 9),
            UniformRandom(Dragonfly(2, 4, 2, 9)),
            0.1,
            params=SimParams(**SMALL),
        )
        data = spec.to_dict()
        data["params"]["obs"] = {"metrics": True}
        with pytest.raises(SpecError, match="obs"):
            RunSpec.from_dict(data)
