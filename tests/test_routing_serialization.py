"""Round-trip tests for T-VLB policy serialization."""

import numpy as np
import pytest

from repro.routing.paths import Channel
from repro.routing.pathset import (
    AllVlbPolicy,
    ExcludingPolicy,
    ExplicitPathSet,
    HopClassPolicy,
    StrategicFiveHopPolicy,
)
from repro.routing.serialization import (
    load_policy,
    policy_from_dict,
    policy_to_dict,
    save_policy,
)
from repro.routing.vlb import VlbDescriptor, enumerate_vlb_descriptors
from repro.topology import Dragonfly


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 3)


def _same_membership(topo, a, b, pairs):
    for src, dst in pairs:
        for desc in enumerate_vlb_descriptors(topo, src, dst):
            assert a.contains(topo, src, dst, desc) == b.contains(
                topo, src, dst, desc
            )


PAIRS = [(0, 8), (3, 10)]


class TestRoundTrips:
    def test_all(self, topo):
        pol = AllVlbPolicy()
        back = policy_from_dict(policy_to_dict(pol))
        _same_membership(topo, pol, back, PAIRS)

    def test_hopclass(self, topo):
        pol = HopClassPolicy(4, 0.37, seed=9)
        back = policy_from_dict(policy_to_dict(pol))
        assert back == pol
        _same_membership(topo, pol, back, PAIRS)

    def test_strategic(self, topo):
        pol = StrategicFiveHopPolicy("3+2")
        back = policy_from_dict(policy_to_dict(pol))
        assert back == pol

    def test_excluding(self, topo):
        d0 = next(enumerate_vlb_descriptors(topo, 0, 8))
        pol = ExcludingPolicy(
            HopClassPolicy(5, 0.5),
            excluded_channels=frozenset({Channel(0, 1), Channel(4, 8, 0)}),
            excluded_descriptors=frozenset({(0, 8, d0)}),
        )
        back = policy_from_dict(policy_to_dict(pol))
        _same_membership(topo, pol, back, PAIRS)
        assert back.excluded_channels == pol.excluded_channels
        assert back.excluded_descriptors == pol.excluded_descriptors

    def test_explicit(self, topo):
        descs = list(enumerate_vlb_descriptors(topo, 0, 8))[:5]
        pol = ExplicitPathSet(paths={(0, 8): descs}, label="mine")
        back = policy_from_dict(policy_to_dict(pol))
        assert back.label == "mine"
        assert back.paths == {(0, 8): descs}
        assert all(
            isinstance(d, VlbDescriptor) for d in back.paths[(0, 8)]
        )

    def test_file_roundtrip(self, topo, tmp_path):
        pol = StrategicFiveHopPolicy("2+3")
        path = tmp_path / "tvlb.json"
        save_policy(pol, str(path))
        back = load_policy(str(path))
        assert back == pol

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown policy kind"):
            policy_from_dict({"kind": "quantum"})

    def test_unserializable_type_raises(self):
        class Custom(AllVlbPolicy):
            pass

        # subclass of AllVlbPolicy still serializes as "all";
        # a truly foreign policy object must raise
        class Foreign:
            pass

        with pytest.raises(TypeError):
            policy_to_dict(Foreign())

    def test_algorithm_output_serializes(self, topo):
        """Any policy Algorithm 1 can emit survives a round trip."""
        from repro.core import compute_tvlb

        def cheap(policy, label):
            return -getattr(policy, "full_hops", 6)

        res = compute_tvlb(topo, evaluator=cheap, seed=0)
        back = policy_from_dict(policy_to_dict(res.policy))
        _same_membership(topo, res.policy, back, PAIRS)
