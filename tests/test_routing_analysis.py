"""Tests for path-length analytics (the Section-3.1 motivation numbers)."""

import numpy as np
import pytest

from repro.routing.analysis import (
    expected_packet_hops,
    mean_min_hops,
    vlb_length_distribution,
)
from repro.routing.pathset import (
    AllVlbPolicy,
    HopClassPolicy,
    StrategicFiveHopPolicy,
)
from repro.topology import Dragonfly
from repro.traffic import Shift


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(4, 8, 4, 9)


@pytest.fixture(scope="module")
def pairs(topo):
    demand = Shift(topo, 2, 0).demand_matrix()
    all_pairs = list(zip(*np.nonzero(demand)))
    return [tuple(map(int, p)) for p in all_pairs[:6]]


class TestDistribution:
    def test_all_vlb_distribution(self, topo, pairs):
        stats = vlb_length_distribution(topo, AllVlbPolicy(), pairs)
        assert set(stats.histogram) <= {2, 3, 4, 5, 6}
        assert 5.0 < stats.mean < 6.0  # dominated by 6-hop paths
        assert abs(sum(stats.fraction(h) for h in range(2, 7)) - 1.0) < 1e-9

    def test_strategic_shortens_mean(self, topo, pairs):
        full = vlb_length_distribution(topo, AllVlbPolicy(), pairs)
        strat = vlb_length_distribution(
            topo, StrategicFiveHopPolicy("2+3"), pairs
        )
        assert strat.mean < full.mean
        assert strat.histogram.get(6, 0) == 0

    def test_hopclass_bounds_distribution(self, topo, pairs):
        stats = vlb_length_distribution(topo, HopClassPolicy(4), pairs)
        assert max(stats.histogram) <= 4

    def test_empty_pairs(self, topo):
        stats = vlb_length_distribution(topo, AllVlbPolicy(), [])
        assert stats.count == 0
        assert np.isnan(stats.mean)


class TestSection31Arithmetic:
    def test_paper_example(self):
        # 70% MIN at 3 hops, 30% VLB at 6 hops -> 3.9; at 4.8 -> 3.54
        assert expected_packet_hops(0.7, 3, 6) == pytest.approx(3.9)
        assert expected_packet_hops(0.7, 3, 4.8) == pytest.approx(3.54)
        gain = 3.9 / 3.54 - 1
        assert gain == pytest.approx(0.10, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_packet_hops(1.5, 3, 6)

    def test_min_hops_inter_group(self, topo, pairs):
        # shift(2,0) pairs are inter-group: MIN paths 1..3 hops, mostly 3
        value = mean_min_hops(topo, pairs)
        assert 2.0 <= value <= 3.0
