"""Array-engine parity: the struct-of-arrays engine is bit-identical.

The array engine (``SimParams(engine="array")``) re-implements the
per-cycle deliver/crossbar/transmit phases over numpy struct-of-arrays
state with a native C kernel.  Its entire value rests on one contract:
every ``SimResult`` field equals the timing-wheel engine's (and hence
the legacy oracle's) bit for bit, across routing variants, seeds, and
loads.  These tests pin that contract, the documented scalar fallback
(no C compiler -> inherited wheel path), and the cache/identity
neutrality of the engine knob: runs from different engines must share
result-cache entries, because the knob changes performance, never
results.
"""

import pytest

import repro.perf.executor as executor_module
from repro.perf.bench import legacy_engine
from repro.perf.cache import SimCache, fingerprint
from repro.perf.executor import SimTask, SweepExecutor
from repro.sim import SimParams, simulate
from repro.sim.array import ArrayNetwork, native_available
from repro.sim.stats import StatsCollector
from repro.topology import Dragonfly
from repro.traffic.patterns import UniformRandom

TOPO = Dragonfly(2, 4, 2, 5)
ROUTINGS = ["min", "vlb", "ugal-l", "ugal-g", "par"]


def _run(routing, *, load=0.2, seed=3, engine="wheel", window=80):
    return simulate(
        TOPO,
        UniformRandom(TOPO),
        load,
        routing=routing,
        params=SimParams(window_cycles=window, engine=engine),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Bit-parity across the seed grid and every routing variant
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("routing", ROUTINGS)
@pytest.mark.parametrize("seed", [0, 3])
def test_array_matches_wheel(routing, seed):
    """Full SimResult equality: every measured field, not a tolerance."""
    assert _run(routing, seed=seed, engine="array") == _run(
        routing, seed=seed
    )


@pytest.mark.parametrize("routing", ["min", "ugal-l", "par"])
def test_array_matches_wheel_at_high_load(routing):
    """Saturation exercises budgets, credit stalls, and deep queues."""
    assert _run(routing, load=0.9, engine="array") == _run(
        routing, load=0.9
    )


def test_array_matches_legacy_oracle():
    """Transitivity made explicit: array == legacy, not just == wheel."""
    arr = _run("ugal-l", load=0.6, engine="array")
    with legacy_engine():
        legacy = _run("ugal-l", load=0.6)
    assert arr == legacy


def test_par_revisions_exercised():
    """The PAR arm revises packets, so hop-1 revision -- the only
    order-sensitive RNG in a cycle -- is actually covered above."""
    res = _run("par", load=0.6, engine="array")
    assert res.par_revised > 0
    assert res == _run("par", load=0.6)


def test_array_engine_class_is_used():
    from repro.sim.engine import build_network

    net = build_network(TOPO, SimParams(engine="array"), "ugal-l")
    assert isinstance(net, ArrayNetwork)


# ---------------------------------------------------------------------------
# Documented scalar fallback
# ---------------------------------------------------------------------------
def test_fallback_without_native_kernel(monkeypatch):
    """With the native gate off, ArrayNetwork runs the inherited wheel
    path -- same results, no kernel required."""
    monkeypatch.setenv("REPRO_ARRAYNET_NATIVE", "0")
    assert _run("ugal-l", engine="array") == _run("ugal-l")


def test_native_kernel_builds_here():
    """CI images ship a C compiler; if this fails the perf numbers in
    BENCH_sim.json silently degrade to the fallback."""
    assert native_available()


# ---------------------------------------------------------------------------
# Engine knob is identity-neutral: cross-engine cache sharing
# ---------------------------------------------------------------------------
def test_engine_excluded_from_fingerprint():
    pattern = UniformRandom(TOPO)
    fps = {
        fingerprint(
            TOPO,
            pattern,
            0.2,
            routing="ugal-l",
            policy=None,
            params=SimParams(window_cycles=80, engine=engine),
            seed=3,
        )
        for engine in ("wheel", "array", "legacy")
    }
    assert len(fps) == 1


def test_cross_engine_cache_sharing(tmp_path, monkeypatch):
    """An array-engine run warms the cache for a wheel-engine run."""

    def task(engine):
        return SimTask(
            TOPO,
            UniformRandom(TOPO),
            0.2,
            routing="ugal-l",
            policy=None,
            params=SimParams(window_cycles=80, engine=engine),
            seed=3,
        )

    with SweepExecutor(jobs=1, cache=SimCache(str(tmp_path))) as executor:
        first = executor.run([task("array")])
        assert executor.cache_hits == 0

    def bomb(t):
        raise AssertionError("cache miss: engines do not share entries")

    monkeypatch.setattr(executor_module, "run_task", bomb)
    with SweepExecutor(jobs=1, cache=SimCache(str(tmp_path))) as executor:
        second = executor.run([task("wheel")])
        assert executor.cache_hits == 1
    assert second == first


def test_obs_neutral_on_array_engine():
    """Observability hooks never perturb array-engine results."""
    from repro.obs import ObsConfig

    params = SimParams(window_cycles=80, engine="array")
    instrumented = simulate(
        TOPO,
        UniformRandom(TOPO),
        0.2,
        routing="ugal-l",
        params=params.with_obs(ObsConfig(metrics=True)),
        seed=3,
    )
    assert instrumented == _run("ugal-l", engine="array")


# ---------------------------------------------------------------------------
# Batched stats path is exact, not approximately equal
# ---------------------------------------------------------------------------
def test_batched_stats_match_scalar_appends():
    import numpy as np

    scalar = StatsCollector(num_nodes=4, warmup_cycles=10)
    batched = StatsCollector(num_nodes=4, warmup_cycles=10)
    rng = np.random.default_rng(7)
    cursor = 0
    for _ in range(5):
        n = int(rng.integers(1, 50))
        lats = rng.integers(1, 500, n)
        hops = rng.integers(1, 6, n)
        vlb = rng.integers(0, 2, n)
        cycles = cursor + np.sort(rng.integers(0, 20, n))
        cursor = int(cycles[-1])
        for i in range(n):
            pkt = type(
                "P",
                (),
                {
                    "inject_cycle": int(cycles[i] - lats[i]),
                    "path_hops": int(hops[i]),
                    "used_vlb": bool(vlb[i]),
                },
            )()
            scalar.record_ejection(pkt, int(cycles[i]))
        batched.record_ejection_batch(lats, hops, vlb, cycles)
    a = scalar.result(0.2, 100, 1000.0)
    b = batched.result(0.2, 100, 1000.0)
    assert a == b


# ---------------------------------------------------------------------------
# The new module passes the repo's own static determinism gate
# ---------------------------------------------------------------------------
def test_array_module_clean_under_analyze():
    import os

    from repro.analyze import AnalyzeConfig, analyze_tree

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    report = analyze_tree(
        AnalyzeConfig(root=repo, paths=("src/repro/sim/array",))
    )
    det = [f for f in report.findings if f.rule.startswith("DET1")]
    assert det == [], report.to_text()
