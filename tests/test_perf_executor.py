"""Parallel sweep execution: bit-identical to serial, in task order."""

from repro.perf.executor import SimTask, SweepExecutor, default_jobs, run_task
from repro.sim import SimParams
from repro.sim.replication import replicate
from repro.sim.sweep import latency_vs_load
from repro.topology import Dragonfly
from repro.traffic.patterns import UniformRandom

TOPO = Dragonfly(2, 4, 2, 5)
PARAMS = SimParams(window_cycles=60)
LOADS = [0.1, 0.2, 0.3]


def _tasks(loads=LOADS, routing="min", seed=1):
    return [
        SimTask(
            TOPO,
            UniformRandom(TOPO),
            load,
            routing=routing,
            params=PARAMS,
            seed=seed,
        )
        for load in loads
    ]


def test_parallel_matches_serial_exactly():
    tasks = _tasks()
    serial = [run_task(t) for t in tasks]
    with SweepExecutor(jobs=2) as executor:
        parallel = executor.run(tasks)
    assert parallel == serial


def test_results_align_with_task_order():
    """Results are positional even when completion order scrambles."""
    tasks = _tasks(loads=[0.3, 0.1, 0.2])
    expected = [run_task(t) for t in tasks]
    with SweepExecutor(jobs=2) as executor:
        got = executor.run(tasks)
    for i, (g, e) in enumerate(zip(got, expected)):
        assert g == e, f"result {i} does not match its task"


def test_jobs_one_runs_serially_in_process():
    with SweepExecutor(jobs=1) as executor:
        results = executor.run(_tasks())
        assert executor.computed_serial == len(LOADS)
        assert executor.computed_parallel == 0
        assert executor._pool is None
        assert not executor.parallel
    assert results == [run_task(t) for t in _tasks()]


def test_single_task_batch_avoids_pool():
    with SweepExecutor(jobs=4) as executor:
        result = executor.run_one(_tasks(loads=[0.2])[0])
        assert executor.computed_serial == 1
        assert executor._pool is None
    assert result == run_task(_tasks(loads=[0.2])[0])


def test_latency_vs_load_executor_identical():
    pattern = UniformRandom(TOPO)
    kwargs = dict(
        routing="min", params=PARAMS, seed=1, stop_after_saturation=False
    )
    serial = latency_vs_load(TOPO, pattern, LOADS, **kwargs)
    with SweepExecutor(jobs=2) as executor:
        pooled = latency_vs_load(
            TOPO, pattern, LOADS, executor=executor, **kwargs
        )
    assert pooled.rows() == serial.rows()


def test_replicate_executor_identical():
    kwargs = dict(
        routing="ugal-l", params=PARAMS, seeds=range(3)
    )
    serial = replicate(
        TOPO, lambda s: UniformRandom(TOPO), 0.2, **kwargs
    )
    with SweepExecutor(jobs=2) as executor:
        pooled = replicate(
            TOPO,
            lambda s: UniformRandom(TOPO),
            0.2,
            executor=executor,
            **kwargs,
        )
    assert pooled["latency"].values == serial["latency"].values
    assert pooled["accepted"].values == serial["accepted"].values


def test_default_jobs_env(monkeypatch):
    import os

    cap = os.cpu_count() or 1
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    # $REPRO_JOBS is honoured up to the host's core count: oversubscribing
    # a sweep slows it down (BENCH_sim.json parallel_speedup < 1 on a
    # 1-CPU host), so the default never exceeds os.cpu_count().
    assert default_jobs() == min(6, cap)
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert default_jobs() == 1


def test_describe_smoke():
    with SweepExecutor(jobs=1) as executor:
        executor.run(_tasks(loads=[0.1]))
        text = executor.describe()
    assert "serial" in text and "no cache" in text
