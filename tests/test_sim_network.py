"""Tests for the network fabric: delivery, credits, conservation, deadlock."""

import numpy as np
import pytest

from repro.routing.minimal import min_paths
from repro.sim.engine import build_network
from repro.sim.packet import Packet
from repro.sim.params import SimParams
from repro.sim.routing import make_routing
from repro.topology import Dragonfly


def _drain(network, max_cycles=5000):
    """Step until nothing is in flight and all credits returned (or fail)."""
    for _ in range(max_cycles):
        if network.quiescent():
            return network.cycle
        network.step()
    raise AssertionError("network did not drain")


def _send_packets(topo, pairs, params=None, routing="min", policy=None):
    """Inject one packet per (src_node, dst_node) pair at cycle 0."""
    params = params or SimParams(window_cycles=100)
    network = build_network(topo, params, routing)
    ejected = []
    network.on_eject = lambda pkt, cyc: ejected.append((pkt, cyc))
    rng = np.random.default_rng(0)
    algo = make_routing(network, routing, policy=policy, rng=rng)
    network.on_arrival = algo.revise_at
    for src, dst in pairs:
        packet = Packet(src, dst, 0)
        algo.route_packet(packet)
        network.inject(packet)
    _drain(network)
    return network, ejected


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


class TestDeliveryAndLatency:
    def test_single_packet_delivered(self, topo):
        _net, ejected = _send_packets(topo, [(0, topo.num_nodes - 1)])
        assert len(ejected) == 1
        pkt, _ = ejected[0]
        assert pkt.dst_node == topo.num_nodes - 1

    def test_zero_load_latency_matches_hops(self, topo):
        # MIN path latency = injection + per-hop (wire + router) + ejection
        src, dst = 0, topo.num_nodes - 1
        params = SimParams(window_cycles=100)
        (path,) = min_paths(
            topo, topo.switch_of_node(src), topo.switch_of_node(dst)
        )
        wire = sum(
            params.global_latency if s != -1 else params.local_latency
            for s in path.slots
        )
        expected = (
            params.injection_latency  # into the source switch
            + wire
            + path.num_hops * params.router_latency
            + params.injection_latency  # ejection channel
        )
        _net, ejected = _send_packets(topo, [(src, dst)], params=params)
        _pkt, cycle = ejected[0]
        assert cycle == expected

    def test_same_switch_delivery(self, topo):
        # src and dst attached to the same switch: no network hops
        _net, ejected = _send_packets(topo, [(0, 1)])
        pkt, cycle = ejected[0]
        assert pkt.path_hops == 0
        assert cycle <= 4

    def test_conservation_many_packets(self, topo):
        rng = np.random.default_rng(3)
        pairs = []
        for src in range(topo.num_nodes):
            dst = int(rng.integers(topo.num_nodes - 1))
            dst += dst >= src
            pairs.append((src, dst))
        _net, ejected = _send_packets(topo, pairs, routing="ugal-l")
        assert len(ejected) == len(pairs)
        assert sorted(p.src_node for p, _ in ejected) == sorted(
            s for s, _ in pairs
        )


class TestCreditsAndBuffers:
    def test_credits_restored_after_drain(self, topo):
        params = SimParams(window_cycles=100, buffer_size=4)
        pairs = [(n, (n + 17) % topo.num_nodes) for n in range(topo.num_nodes)]
        pairs = [(s, d) for s, d in pairs if d != s]
        network, ejected = _send_packets(
            topo, pairs, params=params, routing="ugal-l"
        )
        assert len(ejected) == len(pairs)
        for channel in network.channels.values():
            assert all(c == params.buffer_size for c in channel.credits)

    def test_credits_never_negative_nor_overflow(self, topo):
        params = SimParams(window_cycles=60, buffer_size=2)
        network = build_network(topo, params, "vlb")
        rng = np.random.default_rng(1)
        algo = make_routing(network, "vlb", rng=rng)
        network.on_eject = lambda pkt, cyc: None
        network.on_arrival = algo.revise_at
        nodes = np.arange(topo.num_nodes)
        for cycle in range(300):
            for src in nodes[rng.random(len(nodes)) < 0.3]:
                dst = int(rng.integers(topo.num_nodes - 1))
                dst += dst >= src
                pkt = Packet(int(src), dst, cycle)
                algo.route_packet(pkt)
                network.inject(pkt)
            network.step()
            for channel in network.channels.values():
                for c in channel.credits:
                    assert 0 <= c <= params.buffer_size
        # input buffers never exceed their capacity
        for router in network.routers:
            for q in router.queues:
                assert len(q) <= params.buffer_size

    def test_tiny_buffers_still_drain(self, topo):
        # stress deadlock freedom with 1-flit buffers and VLB traffic
        params = SimParams(window_cycles=50, buffer_size=1)
        pairs = [
            (n, (n + topo.num_nodes // 2) % topo.num_nodes)
            for n in range(topo.num_nodes)
        ]
        _net, ejected = _send_packets(
            topo, pairs, params=params, routing="vlb"
        )
        assert len(ejected) == len(pairs)


class TestRoutingVariants:
    def test_min_uses_no_vlb(self, topo):
        pairs = [(0, topo.num_nodes - 1)] * 5
        _net, ejected = _send_packets(topo, pairs, routing="min")
        assert all(not p.used_vlb for p, _ in ejected)
        assert all(p.path_hops <= 3 for p, _ in ejected)

    def test_vlb_uses_two_global_hops(self, topo):
        pairs = [(0, topo.num_nodes - 1)] * 5
        _net, ejected = _send_packets(topo, pairs, routing="vlb")
        assert all(p.used_vlb for p, _ in ejected)
        assert all(4 <= p.path_hops <= 6 for p, _ in ejected)

    def test_t_variant_requires_policy(self, topo):
        params = SimParams()
        network = build_network(topo, params, "t-ugal-l")
        with pytest.raises(ValueError, match="needs a custom policy"):
            make_routing(network, "t-ugal-l")

    def test_unknown_variant_rejected(self, topo):
        network = build_network(topo, SimParams(), "ugal-l")
        with pytest.raises(ValueError, match="unknown routing variant"):
            make_routing(network, "warp")

    def test_par_revision_switches_to_vlb(self):
        # Saturate the direct links so PAR revises some MIN decisions.
        topo = Dragonfly(2, 4, 2, 9)
        params = SimParams(window_cycles=150)
        network = build_network(topo, params, "par")
        rng = np.random.default_rng(0)
        algo = make_routing(network, "par", rng=rng)
        network.on_eject = lambda pkt, cyc: None
        network.on_arrival = algo.revise_at
        shift = topo.a * topo.p * 2  # two groups ahead
        for cycle in range(400):
            for node in range(topo.num_nodes):
                if rng.random() < 0.3:
                    pkt = Packet(
                        node, (node + shift) % topo.num_nodes, cycle
                    )
                    algo.route_packet(pkt)
                    network.inject(pkt)
            network.step()
        assert algo.par_revised > 0


class TestPortMapping:
    def test_every_channel_has_valid_ports(self, topo):
        network = build_network(topo, SimParams(), "ugal-l")
        for (u, v, slot), ch in network.channels.items():
            assert ch.src_router == u and ch.dst_router == v
            assert 0 <= ch.dst_port < topo.radix

    def test_channel_count(self, topo):
        network = build_network(topo, SimParams(), "ugal-l")
        expected = topo.g * topo.a * (topo.a - 1) + 2 * len(topo.global_links)
        assert len(network.channels) == expected
