"""Tests for JSON persistence of figure results and the CLI --json flag."""

import json

import numpy as np

from repro.cli import main
from repro.experiments.report import FigureResult, _jsonable


class TestJsonable:
    def test_numpy_scalars_converted(self):
        out = _jsonable({"a": np.float64(1.5), "b": [np.int64(2)]})
        assert out == {"a": 1.5, "b": [2]}
        json.dumps(out)

    def test_nested_structures(self):
        out = _jsonable({"curves": {"A": [(0.1, np.float64(2.0))]}})
        assert out["curves"]["A"][0] == [0.1, 2.0]

    def test_non_serializable_falls_back_to_str(self):
        class Weird:
            def __repr__(self):
                return "weird!"

        assert _jsonable(Weird()) == "weird!"

    def test_tuple_keys_stringified(self):
        out = _jsonable({(1, 2): 3})
        assert out == {"(1, 2)": 3}


class TestFigureResultJson:
    def test_roundtrip(self, tmp_path):
        r = FigureResult("figX", "title", "body", data={"x": 1.0})
        path = tmp_path / "figx.json"
        r.save(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == {
            "figure": "figX", "title": "title", "data": {"x": 1.0}
        }

    def test_to_json_omits_text(self):
        r = FigureResult("figX", "t", "very long body", data={})
        assert "very long body" not in r.to_json()


class TestCliJson:
    def test_figure_json_flag(self, tmp_path, capsys):
        path = tmp_path / "table2.json"
        assert main(["figure", "table2", "--json", str(path)]) == 0
        loaded = json.loads(path.read_text())
        assert loaded["figure"] == "table2"
        assert "saved JSON record" in capsys.readouterr().out
