"""Tests for VLB descriptors, paths, and hop classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    enumerate_vlb_descriptors,
    vlb_class_counts,
    vlb_hops,
    vlb_path,
)
from repro.routing.vlb import (
    MAX_VLB_HOPS,
    MIN_VLB_HOPS,
    VlbDescriptor,
    count_vlb_paths,
    vlb_leg_hops,
)
from repro.topology import Dragonfly


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(4, 8, 4, 9)


class TestEnumeration:
    def test_count_formula(self, topo):
        # (g-2) groups x a switches x m^2 slot combinations
        m = topo.links_per_group_pair
        expected = (topo.g - 2) * topo.a * m * m
        descs = list(enumerate_vlb_descriptors(topo, 0, 17))
        assert len(descs) == expected == count_vlb_paths(topo, 0, 17)

    def test_no_intermediate_in_endpoint_groups(self, topo):
        for desc in enumerate_vlb_descriptors(topo, 0, 17):
            gm = topo.group_of(desc.mid)
            assert gm not in (topo.group_of(0), topo.group_of(17))

    def test_descriptors_unique(self, topo):
        descs = list(enumerate_vlb_descriptors(topo, 0, 17))
        assert len(set(descs)) == len(descs)

    def test_same_group_pair_allows_vlb(self, topo):
        # src and dst in the same group: VLB still detours via another group
        descs = list(enumerate_vlb_descriptors(topo, 0, 1))
        m = topo.links_per_group_pair
        assert len(descs) == (topo.g - 1) * topo.a * m * m


class TestPathsAndHops:
    def test_paths_valid_and_hop_counts_match(self, topo):
        for desc in list(enumerate_vlb_descriptors(topo, 0, 17))[::37]:
            p = vlb_path(topo, 0, 17, desc)
            p.validate(topo)
            assert p.src == 0 and p.dst == 17
            assert p.num_hops == vlb_hops(topo, 0, 17, desc)
            assert p.num_global_hops == 2

    def test_hop_range(self, topo):
        for desc in list(enumerate_vlb_descriptors(topo, 0, 17))[::19]:
            assert MIN_VLB_HOPS <= vlb_hops(topo, 0, 17, desc) <= MAX_VLB_HOPS

    def test_leg_hops_sum(self, topo):
        for desc in list(enumerate_vlb_descriptors(topo, 3, 20))[::23]:
            a, b = vlb_leg_hops(topo, 3, 20, desc)
            assert 1 <= a <= 3 and 1 <= b <= 3
            assert a + b == vlb_hops(topo, 3, 20, desc)

    def test_class_counts_sum_to_total(self, topo):
        counts = vlb_class_counts(topo, 0, 17)
        assert sum(counts.values()) == count_vlb_paths(topo, 0, 17)
        assert set(counts) <= {2, 3, 4, 5, 6}

    def test_rejects_intermediate_in_endpoint_group(self, topo):
        bad = VlbDescriptor(mid=1, slot1=0, slot2=0)  # group 0 == src group
        with pytest.raises(ValueError, match="intermediate"):
            vlb_path(topo, 0, 17, bad)

    def test_two_hop_paths_exist_on_dense_topology(self):
        # dfly(2,4,2,3) with the circulant arrangement: 4 links per group
        # pair spread across switches, so some switch pairs have
        # direct-global+direct-global VLB paths.  (The absolute arrangement
        # packs each switch's ports toward a single peer group and has none.)
        t = Dragonfly(2, 4, 2, 3, arrangement="circulant")
        found = 0
        for s in range(t.num_switches):
            for d in range(t.num_switches):
                if s == d:
                    continue
                counts = vlb_class_counts(t, s, d)
                found += counts.get(2, 0)
        assert found > 0


class TestVlbProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        src=st.integers(min_value=0, max_value=35),
        dst=st.integers(min_value=0, max_value=35),
    )
    def test_random_pairs_on_small_topology(self, src, dst):
        t = Dragonfly(2, 4, 2, 9)
        if src == dst:
            return
        for desc in list(enumerate_vlb_descriptors(t, src, dst))[::5]:
            p = vlb_path(t, src, dst, desc)
            p.validate(t)
            assert p.num_global_hops == 2
            assert p.src == src and p.dst == dst
