"""ProgressReporter heartbeats, throttling, and ETA semantics."""

import io

from repro.obs import ProgressReporter


def _fake_clock(step=1.0):
    state = {"t": -step}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


def _reporter(interval=10.0, step=1.0):
    stream = io.StringIO()
    reporter = ProgressReporter(
        label="test", interval=interval, stream=stream,
        clock=_fake_clock(step),
    )
    return reporter, stream


class TestHeartbeats:
    def test_lines_carry_counts_and_label(self):
        reporter, stream = _reporter(interval=0.0)
        reporter.start(3)
        for _ in range(3):
            reporter.advance()
        reporter.finish()
        lines = stream.getvalue().strip().splitlines()
        assert all(line.startswith("[test]") for line in lines)
        assert "3/3 done" in lines[-1]

    def test_throttled_to_interval(self):
        # clock ticks 1s per call, interval 10s: the first advance emits
        # (initial heartbeat), then only the final one (done == total)
        reporter, stream = _reporter(interval=10.0)
        reporter.start(5)
        for _ in range(5):
            reporter.advance()
        emitted = stream.getvalue().count("\n")
        assert emitted < 5
        assert reporter.lines_emitted == emitted

    def test_cache_hits_reported(self):
        reporter, stream = _reporter(interval=0.0)
        reporter.start(2)
        reporter.advance(cache_hit=True)
        reporter.advance()
        assert "1 cache hit" in stream.getvalue()


class TestEta:
    def test_eta_excludes_cache_hits(self):
        reporter, _ = _reporter(interval=1000.0)
        reporter.start(10)
        # 4 clock ticks consumed: start + three advances below
        reporter.advance(cache_hit=True)
        reporter.advance(cache_hit=True)
        reporter.advance()  # the only computed point
        eta = reporter.eta_seconds()
        assert eta is not None
        # rate is computed-points / elapsed, not done / elapsed: with
        # hits counted the estimate would be ~3x smaller
        assert eta > (10 - 3) / (3 / 1.0)

    def test_no_eta_without_computed_points(self):
        reporter, _ = _reporter()
        reporter.start(4)
        reporter.advance(cache_hit=True)
        assert reporter.eta_seconds() is None

    def test_no_eta_when_done(self):
        reporter, _ = _reporter(interval=0.0)
        reporter.start(1)
        reporter.advance()
        assert reporter.eta_seconds() is None


class TestFinish:
    def test_early_end_stays_quiet(self):
        reporter, stream = _reporter(interval=1000.0)
        reporter.start(5)
        reporter.advance()
        before = stream.getvalue()
        reporter.finish()  # batch aborted: no misleading final line
        assert stream.getvalue() == before

    def test_restart_resets_counters(self):
        reporter, _ = _reporter(interval=0.0)
        reporter.start(2)
        reporter.advance(cache_hit=True)
        reporter.start(3)
        assert reporter.done == 0
        assert reporter.cache_hits == 0
        assert reporter.total == 3
