"""Tests for VC allocation schemes."""

import pytest

from repro.routing.paths import LOCAL_SLOT, Path
from repro.sim.params import SimParams
from repro.sim.vc import assign_vcs


def _path(slots):
    # switch ids are irrelevant for VC assignment; fabricate a chain
    return Path(tuple(range(len(slots) + 1)), tuple(slots))


L = LOCAL_SLOT


class TestWonScheme:
    def test_min_path(self):
        # local, global, local -> vcs 0, 0, 1
        assert assign_vcs(_path([L, 0, L]), "won") == [0, 0, 1]

    def test_vlb_six_hop(self):
        # l g l l g l: the two chained local hops in the intermediate
        # group each bump the level (without the bump, three such paths
        # can close a cyclic dependency among one group's local channels)
        vcs = assign_vcs(_path([L, 0, L, L, 0, L]), "won")
        assert vcs == [0, 0, 1, 2, 2, 3]
        assert max(vcs) < SimParams().vcs_required("ugal-l")

    def test_global_only(self):
        assert assign_vcs(_path([0, 0]), "won") == [0, 1]

    def test_chained_locals_bump(self):
        # l l l: each chained local hop gets a fresh level
        assert assign_vcs(_path([L, L, L]), "won") == [0, 1, 2]
        # a global hop between locals resets the chain
        assert assign_vcs(_path([L, 0, L, L]), "won") == [0, 0, 1, 2]

    def test_revised_fragment_shifted(self):
        vcs = assign_vcs(_path([L, 0, L, 0, L]), "won", revised=True)
        assert vcs == [1, 1, 2, 2, 3]
        assert max(vcs) < SimParams().vcs_required("par")

    def test_revised_six_hop_uses_par_budget_exactly(self):
        vcs = assign_vcs(_path([L, 0, L, L, 0, L]), "won", revised=True)
        assert vcs == [1, 1, 2, 3, 3, 4]
        assert max(vcs) == SimParams().vcs_required("par") - 1

    def test_won_ignores_hop_offset(self):
        # the won scheme keys on path structure, not hops already taken
        base = assign_vcs(_path([L, 0, L]), "won", hop_offset=3)
        assert base == [0, 0, 1]

    def test_vc_never_decreases(self):
        for slots in ([L, 0, L, 0, L], [0, L, 0], [L, 0, 1, L]):
            vcs = assign_vcs(_path(slots), "won")
            assert vcs == sorted(vcs)


class TestPerhopScheme:
    def test_one_vc_per_hop(self):
        vcs = assign_vcs(_path([L, 0, L, L, 0, L]), "perhop")
        assert vcs == [0, 1, 2, 3, 4, 5]
        assert max(vcs) < SimParams(vc_scheme="perhop").vcs_required("ugal-g")

    def test_offset_for_revision(self):
        vcs = assign_vcs(_path([L, 0, L]), "perhop", hop_offset=1)
        assert vcs == [1, 2, 3]

    def test_revised_fragment_fits_par_budget(self):
        # a PAR revision at hop 1 re-routes onto a full 6-hop VLB path;
        # the longest fragment must still fit routing(6)'s PAR budget
        vcs = assign_vcs(_path([L, 0, L, L, 0, L]), "perhop", hop_offset=1)
        assert vcs == [1, 2, 3, 4, 5, 6]
        assert max(vcs) == SimParams(vc_scheme="perhop").vcs_required("par") - 1

    def test_perhop_ignores_revised_flag(self):
        # perhop levels come from the hop offset alone
        assert assign_vcs(_path([L, 0]), "perhop", revised=True) == [0, 1]


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown vc scheme"):
            assign_vcs(_path([L]), "rainbow")

    def test_overflow_detected(self):
        with pytest.raises(ValueError, match="only 2"):
            assign_vcs(_path([L, 0, L, L, 0, L]), "perhop", num_vcs=2)

    def test_overflow_names_offending_hop(self):
        # perhop: hop 2 is the first to need VC 2
        with pytest.raises(ValueError, match="hop 2"):
            assign_vcs(_path([L, 0, L, L, 0, L]), "perhop", num_vcs=2)
        # won: the first chained local (hop 3) needs VC 2
        with pytest.raises(ValueError, match="hop 3"):
            assign_vcs(_path([L, 0, L, L, 0, L]), "won", num_vcs=2)

    def test_overflow_in_revised_fragment(self):
        # fits unrevised, overflows once the revision offset is added
        path = _path([L, 0, L, L, 0, L])
        assert max(assign_vcs(path, "won", num_vcs=4)) == 3
        with pytest.raises(ValueError, match="hop 5"):
            assign_vcs(path, "won", revised=True, num_vcs=4)


class TestParamsVcRequirements:
    def test_table3_defaults(self):
        p = SimParams()
        assert p.vcs_required("ugal-l") == 4
        assert p.vcs_required("ugal-g") == 4
        assert p.vcs_required("par") == 5
        assert p.vcs_required("t-par") == 5

    def test_perhop_requirements(self):
        p = SimParams(vc_scheme="perhop")
        assert p.vcs_required("ugal-l") == 6
        assert p.vcs_required("par") == 7

    def test_explicit_override(self):
        assert SimParams(num_vcs=9).vcs_required("ugal-l") == 9

    def test_sparse_group_requirements(self):
        # 2D all-to-all groups (max_local_hops=2) chain more local hops
        p = SimParams()
        assert p.vcs_required("ugal-l", max_local_hops=2) == 8
        assert p.vcs_required("par", max_local_hops=2) == 9
        pp = SimParams(vc_scheme="perhop")
        assert pp.vcs_required("ugal-l", max_local_hops=2) == 10
        assert pp.vcs_required("par", max_local_hops=2) == 11

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SimParams(buffer_size=0)
        with pytest.raises(ValueError):
            SimParams(vc_scheme="other")
        with pytest.raises(ValueError):
            SimParams(speedup=0)
        with pytest.raises(ValueError):
            SimParams(local_latency=0)

    def test_paper_preset(self):
        p = SimParams.paper()
        assert p.window_cycles == 10_000
        assert p.buffer_size == 32
        assert p.local_latency == 10 and p.global_latency == 15
        assert p.warmup_cycles == 30_000
        assert p.total_cycles == 40_000

    def test_scaled(self):
        p = SimParams.paper().scaled(500)
        assert p.window_cycles == 500
        assert p.buffer_size == 32
