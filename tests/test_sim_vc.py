"""Tests for VC allocation schemes."""

import pytest

from repro.routing.paths import LOCAL_SLOT, Path
from repro.sim.params import SimParams
from repro.sim.vc import assign_vcs


def _path(slots):
    # switch ids are irrelevant for VC assignment; fabricate a chain
    return Path(tuple(range(len(slots) + 1)), tuple(slots))


L = LOCAL_SLOT


class TestWonScheme:
    def test_min_path(self):
        # local, global, local -> vcs 0, 0, 1
        assert assign_vcs(_path([L, 0, L]), "won") == [0, 0, 1]

    def test_vlb_six_hop(self):
        # l g l l g l -> 0 0 1 1 1 2
        vcs = assign_vcs(_path([L, 0, L, L, 0, L]), "won")
        assert vcs == [0, 0, 1, 1, 1, 2]
        assert max(vcs) < SimParams().vcs_required("ugal-l")

    def test_global_only(self):
        assert assign_vcs(_path([0, 0]), "won") == [0, 1]

    def test_revised_fragment_shifted(self):
        vcs = assign_vcs(_path([L, 0, L, 0, L]), "won", revised=True)
        assert vcs == [1, 1, 2, 2, 3]
        assert max(vcs) < SimParams().vcs_required("par")

    def test_vc_never_decreases(self):
        for slots in ([L, 0, L, 0, L], [0, L, 0], [L, 0, 1, L]):
            vcs = assign_vcs(_path(slots), "won")
            assert vcs == sorted(vcs)


class TestPerhopScheme:
    def test_one_vc_per_hop(self):
        vcs = assign_vcs(_path([L, 0, L, L, 0, L]), "perhop")
        assert vcs == [0, 1, 2, 3, 4, 5]
        assert max(vcs) < SimParams(vc_scheme="perhop").vcs_required("ugal-g")

    def test_offset_for_revision(self):
        vcs = assign_vcs(_path([L, 0, L]), "perhop", hop_offset=1)
        assert vcs == [1, 2, 3]


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown vc scheme"):
            assign_vcs(_path([L]), "rainbow")

    def test_overflow_detected(self):
        with pytest.raises(ValueError, match="only 2"):
            assign_vcs(_path([L, 0, L, L, 0, L]), "perhop", num_vcs=2)


class TestParamsVcRequirements:
    def test_table3_defaults(self):
        p = SimParams()
        assert p.vcs_required("ugal-l") == 4
        assert p.vcs_required("ugal-g") == 4
        assert p.vcs_required("par") == 5
        assert p.vcs_required("t-par") == 5

    def test_perhop_requirements(self):
        p = SimParams(vc_scheme="perhop")
        assert p.vcs_required("ugal-l") == 6
        assert p.vcs_required("par") == 7

    def test_explicit_override(self):
        assert SimParams(num_vcs=9).vcs_required("ugal-l") == 9

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SimParams(buffer_size=0)
        with pytest.raises(ValueError):
            SimParams(vc_scheme="other")
        with pytest.raises(ValueError):
            SimParams(speedup=0)
        with pytest.raises(ValueError):
            SimParams(local_latency=0)

    def test_paper_preset(self):
        p = SimParams.paper()
        assert p.window_cycles == 10_000
        assert p.buffer_size == 32
        assert p.local_latency == 10 and p.global_latency == 15
        assert p.warmup_cycles == 30_000
        assert p.total_cycles == 40_000

    def test_scaled(self):
        p = SimParams.paper().scaled(500)
        assert p.window_cycles == 500
        assert p.buffer_size == 32
