"""Tests for multi-seed replication and the multi-candidate UGAL option."""

import pytest

from repro.sim import SimParams, replicate, replicated_curve, simulate
from repro.topology import Dragonfly
from repro.traffic import RandomPermutation, Shift, UniformRandom


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


@pytest.fixture(scope="module")
def fast():
    return SimParams(window_cycles=150)


class TestReplicate:
    def test_mean_and_sem(self, topo, fast):
        stats = replicate(
            topo,
            lambda seed: UniformRandom(topo),
            0.15,
            params=fast,
            seeds=range(4),
        )
        assert stats["latency"].n == 4
        assert stats["latency"].sem > 0
        assert 20 < stats["latency"].mean < 120
        assert stats["accepted"].mean == pytest.approx(0.15, rel=0.2)

    def test_pattern_factory_receives_seed(self, topo, fast):
        seen = []

        def factory(seed):
            seen.append(seed)
            return RandomPermutation(topo, seed=seed)

        replicate(topo, factory, 0.1, params=fast, seeds=[3, 5])
        assert seen == [3, 5]

    def test_single_seed_zero_sem(self, topo, fast):
        stats = replicate(
            topo, lambda s: UniformRandom(topo), 0.1,
            params=fast, seeds=[0],
        )
        assert stats["latency"].sem == 0.0

    def test_curve_shape(self, topo, fast):
        curve = replicated_curve(
            topo,
            lambda s: UniformRandom(topo),
            [0.05, 0.15],
            params=fast,
            seeds=range(2),
        )
        assert [load for load, _ in curve] == [0.05, 0.15]
        for _load, stats in curve:
            assert set(stats) == {"latency", "accepted", "hops",
                                  "vlb_fraction"}


class TestMultiCandidateUgal:
    def test_candidate_count_validation(self):
        with pytest.raises(ValueError, match="candidate counts"):
            SimParams(vlb_candidates=0)

    def test_more_vlb_candidates_not_worse(self, topo):
        # with 4 VLB candidates per decision, UGAL-L picks the least
        # congested; under adversarial traffic this should not hurt
        pattern = Shift(topo, 2, 0)
        p1 = SimParams(window_cycles=200, vlb_candidates=1)
        p4 = SimParams(window_cycles=200, vlb_candidates=4)
        base = simulate(topo, pattern, 0.25, routing="ugal-l",
                        params=p1, seed=3)
        multi = simulate(topo, pattern, 0.25, routing="ugal-l",
                         params=p4, seed=3)
        assert multi.accepted_rate >= 0.9 * base.accepted_rate
        assert multi.avg_latency <= base.avg_latency * 1.3

    def test_more_min_candidates_run(self, topo):
        pattern = Shift(topo, 2, 0)
        params = SimParams(window_cycles=150, min_candidates=3)
        r = simulate(topo, pattern, 0.15, routing="ugal-l",
                     params=params, seed=1)
        assert r.packets_measured > 0
