"""Tests for the dense channel index."""

import pytest

from repro.routing.channels import ChannelIndex
from repro.routing.paths import Channel
from repro.topology import Dragonfly


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 5)


class TestChannelIndex:
    def test_counts(self, topo):
        chidx = ChannelIndex(topo)
        # per group: a*(a-1) ordered local pairs; globals both directions
        assert chidx.num_local == topo.g * topo.a * (topo.a - 1)
        assert chidx.num_global == 2 * len(topo.global_links)
        assert len(chidx) == chidx.num_local + chidx.num_global

    def test_roundtrip(self, topo):
        chidx = ChannelIndex(topo)
        for idx in range(len(chidx)):
            ch = chidx.channel(idx)
            assert chidx.index(ch) == idx

    def test_locals_precede_globals(self, topo):
        chidx = ChannelIndex(topo)
        for idx in range(len(chidx)):
            assert chidx.is_global(idx) == (idx >= chidx.num_local)

    def test_duplicate_registration_rejected(self, topo):
        chidx = ChannelIndex(topo)
        with pytest.raises(ValueError, match="duplicate channel registration"):
            chidx._add(Channel(0, 1))

    def test_duplicate_mentions_existing_index(self, topo):
        chidx = ChannelIndex(topo)
        ch = chidx.channel(7)
        with pytest.raises(ValueError, match="already index 7"):
            chidx._add(ch)

    def test_parallel_global_links_distinct(self, topo):
        # dfly(2,4,2,5) has two links per group pair; their channels must
        # occupy distinct slots in the index
        chidx = ChannelIndex(topo)
        links = topo.links_between_groups(0, 1)
        assert len(links) == 2
        ids = {
            chidx.index(
                Channel(ln.endpoint_in(a), ln.endpoint_in(b), ln.slot)
            )
            for ln in links
            for a, b in ((0, 1), (1, 0))
        }
        assert len(ids) == 4
