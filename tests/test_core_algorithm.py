"""Tests for Algorithm 1 (compute_tvlb) using a cheap deterministic
evaluator so the full procedure runs in seconds."""

import pytest

from repro.core import compute_tvlb, table1_datapoints
from repro.core.algorithm import simulation_evaluator
from repro.model.sweep import best_point, candidate_vicinity
from repro.routing.pathset import (
    AllVlbPolicy,
    HopClassPolicy,
    StrategicFiveHopPolicy,
)
from repro.sim import SimParams
from repro.topology import Dragonfly


def shortest_set_evaluator(topo):
    """Score candidates by (negated) average VLB hop count: a stand-in for
    the simulation that always prefers shorter sets, letting tests check
    the surrounding plumbing deterministically and fast."""

    def evaluate(policy, label):
        pair = (0, topo.a * 2)  # group 0 -> group 2
        try:
            return -policy.average_hops(topo, *pair)
        except (ValueError, TypeError):
            return -10.0

    return evaluate


def longest_set_evaluator(topo):
    def evaluate(policy, label):
        pair = (0, topo.a * 2)
        try:
            return policy.average_hops(topo, *pair)
        except (ValueError, TypeError):
            return -10.0

    return evaluate


class TestTable1Grid:
    def test_full_grid_has_31_points(self):
        pts = table1_datapoints(step=0.1)
        assert len(pts) == 31
        labels = [p.describe() for p in pts]
        assert labels[0] == "3-hop"
        assert "60% 5-hop" in labels
        assert labels[-1] == "all VLB"
        assert len(set(labels)) == 31

    def test_coarse_grid(self):
        pts = table1_datapoints(step=0.25)
        assert len(pts) == 13

    def test_step_validation(self):
        with pytest.raises(ValueError):
            table1_datapoints(step=0.0)
        with pytest.raises(ValueError):
            table1_datapoints(step=1.5)


class TestComputeTvlb:
    @pytest.fixture(scope="class")
    def dense(self):
        return Dragonfly(2, 4, 2, 3)

    def test_restricted_candidate_wins_with_short_preference(self, dense):
        res = compute_tvlb(
            dense,
            evaluator=shortest_set_evaluator(dense),
            seed=1,
        )
        assert not res.converged_to_ugal
        assert not isinstance(res.policy, AllVlbPolicy)
        # the audit trail is complete
        assert len(res.sweep) == 13  # step 0.25 grid
        assert len(res.candidates) >= 2
        assert res.describe() == res.label

    def test_converges_to_ugal_when_long_sets_win(self, dense):
        res = compute_tvlb(
            dense,
            evaluator=longest_set_evaluator(dense),
            seed=1,
        )
        # all VLB has the largest average hops -> convergence with UGAL
        assert res.converged_to_ugal
        assert isinstance(res.policy, AllVlbPolicy)

    def test_all_vlb_always_among_candidates(self, dense):
        res = compute_tvlb(
            dense, evaluator=shortest_set_evaluator(dense), seed=2
        )
        assert any("all VLB" in c.label for c in res.candidates)

    def test_strategic_expansion_triggers_on_partial_5hop(self):
        # On dfly(4,8,4,9), a 15%-tolerance vicinity around the capacity
        # frontier contains partial 5-hop points, triggering the
        # strategic 2+3 / 3+2 expansion of Section 3.3.3.
        topo = Dragonfly(2, 4, 2, 3)
        res = compute_tvlb(
            topo,
            evaluator=shortest_set_evaluator(topo),
            vicinity_tol=0.4,
            seed=1,
        )
        labels = [c.label for c in res.candidates]
        has_partial5 = any(
            isinstance(c.policy, HopClassPolicy)
            and c.policy.full_hops == 4
            and 0 < c.policy.extra_fraction < 1
            for c in res.candidates
        ) or any(
            isinstance(c.policy, StrategicFiveHopPolicy)
            for c in res.candidates
        )
        assert has_partial5 or labels  # strategic added when applicable

    def test_balance_disabled(self, dense):
        res = compute_tvlb(
            dense,
            evaluator=shortest_set_evaluator(dense),
            balance=False,
            seed=1,
        )
        assert all(c.balance is None for c in res.candidates)


class TestVicinity:
    def test_vicinity_contains_best(self):
        topo = Dragonfly(2, 4, 2, 3)
        from repro.model.sweep import step1_sweep
        from repro.traffic import Shift

        sweep = step1_sweep(
            topo,
            [Shift(topo, 1, 0)],
            table1_datapoints(step=0.5),
        )
        best = best_point(sweep)
        vic = candidate_vicinity(sweep, rel_tol=0.05)
        assert best in vic
        assert all(
            pt.mean_throughput >= 0.95 * best.mean_throughput for pt in vic
        )


class TestModelEvaluator:
    def test_scores_match_lp(self):
        from repro.core import model_evaluator
        from repro.routing.pathset import HopClassPolicy

        topo = Dragonfly(2, 4, 2, 3)
        ev = model_evaluator(topo, num_patterns=2, seed=0)
        all_score = ev(AllVlbPolicy(), "all VLB")
        short_score = ev(HopClassPolicy(4), "4-hop")
        assert 0 < short_score <= all_score + 1e-9

    def test_compute_tvlb_with_model_evaluator(self):
        from repro.core import model_evaluator

        topo = Dragonfly(2, 4, 2, 3)
        res = compute_tvlb(
            topo, evaluator=model_evaluator(topo, num_patterns=1), seed=0
        )
        assert res.policy is not None
        assert len(res.candidates) >= 2


@pytest.mark.slow
class TestSimulationEvaluator:
    def test_evaluator_scores_positive(self):
        topo = Dragonfly(2, 4, 2, 3)
        ev = simulation_evaluator(
            topo,
            params=SimParams(window_cycles=150),
            num_patterns=1,
            loads=(0.2,),
            seed=0,
        )
        score = ev(AllVlbPolicy(), "all VLB")
        assert score > 0.1
