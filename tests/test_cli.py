"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_pattern, parse_policy, parse_topology
from repro.routing.pathset import (
    AllVlbPolicy,
    HopClassPolicy,
    StrategicFiveHopPolicy,
)
from repro.topology import Dragonfly


class TestParsers:
    def test_parse_topology(self):
        t = parse_topology("2,4,2,9")
        assert (t.p, t.a, t.h, t.g) == (2, 4, 2, 9)

    def test_parse_topology_bad(self):
        with pytest.raises(SystemExit):
            parse_topology("2,4")

    def test_parse_patterns(self):
        t = Dragonfly(2, 4, 2, 9)
        assert parse_pattern(t, "ur").describe() == "UR"
        assert parse_pattern(t, "shift:2,1").describe() == "shift(2,1)"
        assert parse_pattern(t, "shift:3").describe() == "shift(3,0)"
        assert "permutation" in parse_pattern(t, "perm:7").describe()
        assert "MIXED(25,75" in parse_pattern(t, "mixed:25,75").describe()
        assert "TMIXED(50,50" in parse_pattern(t, "tmixed:50,50").describe()

    def test_parse_pattern_bad(self):
        t = Dragonfly(2, 4, 2, 9)
        with pytest.raises(SystemExit):
            parse_pattern(t, "hotspot")
        with pytest.raises(SystemExit):
            parse_pattern(t, "mixed:banana")

    def test_parse_policies(self):
        assert isinstance(parse_policy(None), AllVlbPolicy)
        assert isinstance(parse_policy("all"), AllVlbPolicy)
        pol = parse_policy("hopclass:4,0.6")
        assert isinstance(pol, HopClassPolicy)
        assert pol.full_hops == 4 and pol.extra_fraction == 0.6
        st = parse_policy("strategic:3+2")
        assert isinstance(st, StrategicFiveHopPolicy)
        assert st.order == "3+2"

    def test_parse_policy_bad(self):
        with pytest.raises(SystemExit):
            parse_policy("zigzag")
        with pytest.raises(SystemExit):
            parse_policy("hopclass")

    def test_parse_policy_from_file(self, tmp_path):
        from repro.routing.serialization import save_policy

        path = tmp_path / "pol.json"
        save_policy(StrategicFiveHopPolicy("3+2"), str(path))
        pol = parse_policy(f"@{path}")
        assert isinstance(pol, StrategicFiveHopPolicy)
        assert pol.order == "3+2"


class TestCommands:
    def test_topo(self, capsys):
        assert main(["topo", "-t", "2,4,2,9"]) == 0
        out = capsys.readouterr().out
        assert "dfly(p=2, a=4, h=2, g=9)" in out
        assert "num_global_links: 36" in out

    def test_paths(self, capsys):
        assert main(["paths", "-t", "2,4,2,9", "0", "20"]) == 0
        out = capsys.readouterr().out
        assert "MIN paths (1):" in out
        assert "VLB paths" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "-t", "4,8,4,9"]) == 0
        out = capsys.readouterr().out
        assert "0.5625" in out

    def test_model(self, capsys):
        assert main(
            ["model", "-t", "2,4,2,3", "--pattern", "shift:1",
             "--policy", "hopclass:4"]
        ) == 0
        out = capsys.readouterr().out
        assert "modeled throughput" in out

    def test_sim(self, capsys):
        assert main(
            ["sim", "-t", "2,4,2,9", "--pattern", "ur", "--load", "0.1",
             "--window", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "saturated     : False" in out

    def test_sim_t_variant(self, capsys):
        assert main(
            ["sim", "-t", "2,4,2,3", "--pattern", "shift:1",
             "--routing", "t-ugal-l", "--policy", "strategic:2+3",
             "--load", "0.1", "--window", "100"]
        ) == 0
        assert "T-UGAL" not in capsys.readouterr().err

    def test_figure_table(self, capsys):
        assert main(["figure", "table2"]) == 0
        out = capsys.readouterr().out
        assert "9126" in out

    def test_figure_unknown(self):
        with pytest.raises(ValueError):
            main(["figure", "fig99"])


class TestVerifyCommand:
    def test_paper_topology_certifies(self, capsys):
        assert main(["verify", "-t", "4,8,4,9", "--no-lint"]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free: certified" in out
        assert "RESULT: PASS" in out

    def test_none_scheme_reports_cycle_nonzero(self, capsys):
        assert main(
            ["verify", "-t", "4,8,4,9", "--vc-scheme", "none", "--no-lint"]
        ) == 1
        out = capsys.readouterr().out
        assert "DEADLOCK RISK" in out
        assert "dependency cycle (each waits on the next)" in out
        assert "RESULT: FAIL" in out

    def test_tvlb_policy_certifies(self, capsys):
        assert main(
            ["verify", "-t", "2,4,2,5", "--policy", "hopclass:4,0.2",
             "--routing", "t-par"]
        ) == 0
        assert "RESULT: PASS" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        assert main(["verify", "-t", "2,4,2,5", "--json", "--pairs", "10"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True
        assert data["cdg"]["certified"] is True

    def test_rules_subset(self, capsys):
        assert main(
            ["verify", "-t", "2,4,2,5", "--no-cdg", "--rules",
             "vc-overflow,hop-validity", "--pairs", "10"]
        ) == 0
        assert "lint: 0 error(s)" in capsys.readouterr().out

    def test_unknown_rule_exits(self):
        with pytest.raises(SystemExit, match="unknown lint rule"):
            main(["verify", "-t", "2,4,2,5", "--no-cdg", "--rules", "bogus"])
