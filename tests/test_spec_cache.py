"""Cache keys via RunSpec fingerprints: seeded patterns are cacheable now.

Before the spec layer, the cache fingerprinted patterns structurally and
``perm``/``mixed``/``tmixed`` (and ``@file.json`` policies) were
unkeyable -- every sweep re-simulated them.  Keys now come from
``RunSpec.fingerprint()``, so these hit the warm cache like everything
else.  These tests monkeypatch the executor's ``run_task`` with a bomb on
the second pass: any cache miss fails loudly.
"""

import json

import pytest

import repro.perf.executor as executor_module
from repro.perf.cache import SimCache
from repro.perf.executor import SimTask, SweepExecutor
from repro.sim import SimParams
from repro.spec import PatternSpec, PolicySpec, RunSpec, TopologySpec
from repro.topology import Dragonfly

TOPO = Dragonfly(2, 4, 2, 5)
PARAMS = SimParams(window_cycles=60)


def _task(pattern_spec, *, routing="ugal-l", policy=None):
    return SimTask(
        TOPO,
        PatternSpec.parse(pattern_spec).build(TOPO),
        0.2,
        routing=routing,
        policy=policy,
        params=PARAMS,
        seed=1,
    )


def _bomb(task):
    raise AssertionError("cache miss: simulate() was invoked")


@pytest.mark.parametrize(
    "pattern_spec", ["perm:7", "mixed:50,50,5", "tmixed:50,50"]
)
def test_seeded_patterns_hit_warm_cache(tmp_path, monkeypatch, pattern_spec):
    task = _task(pattern_spec)
    assert task.key() is not None, f"{pattern_spec} must be cacheable"
    with SweepExecutor(jobs=1, cache=SimCache(str(tmp_path))) as executor:
        first = executor.run([task])
        assert executor.cache_hits == 0

    monkeypatch.setattr(executor_module, "run_task", _bomb)
    with SweepExecutor(jobs=1, cache=SimCache(str(tmp_path))) as executor:
        second = executor.run([_task(pattern_spec)])
        assert executor.cache_hits == 1
    assert second == first


def test_file_policy_hits_warm_cache(tmp_path, monkeypatch):
    path = tmp_path / "policy.json"
    path.write_text(json.dumps({"kind": "strategic", "order": "2+3"}))

    def task():
        return _task(
            "shift:2,0",
            routing="t-ugal-l",
            policy=PolicySpec.parse(f"@{path}").build(),
        )

    assert task().key() is not None
    with SweepExecutor(jobs=1, cache=SimCache(str(tmp_path / "c"))) as ex:
        first = ex.run([task()])
        assert ex.cache_hits == 0
    monkeypatch.setattr(executor_module, "run_task", _bomb)
    with SweepExecutor(jobs=1, cache=SimCache(str(tmp_path / "c"))) as ex:
        second = ex.run([task()])
        assert ex.cache_hits == 1
    assert second == first


def test_key_matches_spec_fingerprint_derivation():
    """The key is a pure function of the RunSpec, not object identity."""
    a, b = _task("perm:7"), _task("perm:7")
    assert a.key() == b.key()
    assert _task("perm:7").key() != _task("perm:8").key()
    assert _task("mixed:50,50,5").key() != _task("tmixed:50,50,5").key()


def test_spec_changes_change_key():
    base = _task("perm:7").key()
    spec = RunSpec(
        topology=TopologySpec.of(TOPO),
        pattern=PatternSpec.parse("perm:7"),
        load=0.2,
        routing="ugal-l",
        params=PARAMS,
        seed=1,
    )
    for changed in (
        spec.replace(load=0.25),
        spec.replace(seed=2),
        spec.replace(routing="min"),
        spec.replace(pattern=PatternSpec.parse("perm:9")),
    ):
        task = SimTask(
            TOPO, changed.pattern.build(TOPO), changed.load,
            routing=changed.routing, policy=None, params=changed.params,
            seed=changed.seed,
        )
        assert task.key() != base
