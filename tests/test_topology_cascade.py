"""Tests for the Cascade-style 2D all-to-all intra-group dragonfly."""

import numpy as np
import pytest

from repro.routing import min_paths
from repro.routing.vlb import (
    enumerate_vlb_descriptors,
    max_vlb_hops,
    vlb_hops,
    vlb_path,
)
from repro.topology import CascadeDragonfly, Dragonfly, validate_topology


@pytest.fixture(scope="module")
def casc():
    # groups of 2x3 switches, 3 groups, 4 links per group pair
    return CascadeDragonfly(p=2, a=6, h=2, g=3, rows=2, cols=3)


class TestStructure:
    def test_validates(self, casc):
        validate_topology(casc)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError, match="rows\\*cols"):
            CascadeDragonfly(p=2, a=6, h=2, g=3, rows=2, cols=2)
        with pytest.raises(ValueError, match="positive"):
            CascadeDragonfly(p=2, a=6, h=2, g=3)

    def test_local_degree_and_radix(self, casc):
        # (rows-1) + (cols-1) = 1 + 2 = 3 local ports
        assert casc.local_degree == 3
        assert casc.radix == 2 + 3 + 2

    def test_neighbors_row_and_column(self, casc):
        sw = casc.switch_at(0, 0, 0)
        nbrs = set(casc.local_neighbors(sw))
        expected = {
            casc.switch_at(0, 0, 1),
            casc.switch_at(0, 0, 2),
            casc.switch_at(0, 1, 0),
        }
        assert nbrs == expected

    def test_adjacency_same_row_or_col_only(self, casc):
        u = casc.switch_at(0, 0, 0)
        v_diag = casc.switch_at(0, 1, 1)
        v_row = casc.switch_at(0, 0, 2)
        assert not casc.local_adjacent(u, v_diag)
        assert casc.local_adjacent(u, v_row)

    def test_coords_roundtrip(self, casc):
        for g in range(casc.g):
            for r in range(casc.rows):
                for c in range(casc.cols):
                    sw = casc.switch_at(g, r, c)
                    assert casc.coords(sw) == (r, c)
                    assert casc.group_of(sw) == g


class TestLocalRouting:
    def test_direct_when_adjacent(self, casc):
        u = casc.switch_at(0, 0, 0)
        v = casc.switch_at(0, 1, 0)
        assert casc.local_route(u, v) == []
        assert casc.local_hops(u, v) == 1

    def test_dimension_ordered_two_hops(self, casc):
        u = casc.switch_at(0, 0, 0)
        v = casc.switch_at(0, 1, 2)
        route = casc.local_route(u, v)
        assert route == [casc.switch_at(0, 0, 2)]  # row first
        assert casc.local_hops(u, v) == 2

    def test_max_local_hops(self, casc):
        assert casc.max_local_hops == 2
        # degenerate 1-row grid is effectively fully connected
        flat = CascadeDragonfly(p=2, a=4, h=2, g=3, rows=1, cols=4)
        assert flat.max_local_hops == 1


class TestPathsOnCascade:
    def test_intra_group_min_path(self, casc):
        u = casc.switch_at(0, 0, 0)
        v = casc.switch_at(0, 1, 1)
        (path,) = min_paths(casc, u, v)
        path.validate(casc)
        assert path.num_hops == 2

    def test_inter_group_min_paths_up_to_5_hops(self, casc):
        found = set()
        for src in casc.switches_in_group(0):
            for dst in casc.switches_in_group(1):
                for p in min_paths(casc, src, dst):
                    p.validate(casc)
                    assert p.num_global_hops == 1
                    found.add(p.num_hops)
        assert max(found) == 5
        assert min(found) <= 2

    def test_vlb_paths_validate_and_reach_10_hops(self, casc):
        src = casc.switch_at(0, 0, 0)
        dst = casc.switch_at(1, 1, 2)
        hops = set()
        for desc in list(enumerate_vlb_descriptors(casc, src, dst))[::3]:
            p = vlb_path(casc, src, dst, desc)
            p.validate(casc)
            assert p.num_global_hops == 2
            assert p.num_hops == vlb_hops(casc, src, dst, desc)
            hops.add(p.num_hops)
        assert max(hops) <= max_vlb_hops(casc) == 10
        assert max(hops) >= 8  # some long paths exist on the grid

    def test_fully_connected_unchanged(self):
        # the generalization must not alter the base topology's paths
        base = Dragonfly(2, 4, 2, 9)
        for p in min_paths(base, 0, 22):
            assert p.num_hops <= 3
        assert max_vlb_hops(base) == 6


class TestAlgorithm1OnCascade:
    def test_compute_tvlb_with_custom_grid(self, casc):
        from repro.core import compute_tvlb
        from repro.routing.pathset import HopClassPolicy

        grid = [HopClassPolicy(h) for h in (5, 6, 7, 8, 10)]

        def prefer_short(policy, label):
            return -getattr(policy, "full_hops", 12)

        res = compute_tvlb(
            casc,
            datapoints=grid,
            evaluator=prefer_short,
            balance=False,
            seed=0,
        )
        assert len(res.sweep) == len(grid)
        # the shortest candidate in the vicinity wins under this evaluator
        assert getattr(res.policy, "full_hops", None) is not None


class TestSimulationOnCascade:
    def test_ugal_runs_and_delivers(self, casc):
        from repro.sim import SimParams, simulate
        from repro.traffic import Shift

        r = simulate(
            casc,
            Shift(casc, 1, 0),
            0.1,
            routing="ugal-l",
            params=SimParams(window_cycles=150, vc_scheme="won"),
            seed=1,
        )
        assert r.packets_measured > 0
        assert not r.saturated

    def test_perhop_scheme_covers_long_paths(self, casc):
        from repro.sim import SimParams, simulate
        from repro.traffic import UniformRandom

        # VLB paths reach 10 hops: perhop needs num_vcs >= 10
        r = simulate(
            casc,
            UniformRandom(casc),
            0.1,
            routing="vlb",
            params=SimParams(
                window_cycles=150, vc_scheme="perhop", num_vcs=11
            ),
            seed=1,
        )
        assert r.packets_measured > 0

    def test_tvlb_policy_on_cascade(self, casc):
        from repro.routing.pathset import HopClassPolicy
        from repro.sim import SimParams, simulate
        from repro.traffic import Shift

        pol = HopClassPolicy(7)  # restricted VLB set for the grid
        r = simulate(
            casc,
            Shift(casc, 1, 0),
            0.1,
            routing="t-ugal-l",
            policy=pol,
            params=SimParams(window_cycles=150),
            seed=1,
        )
        assert r.packets_measured > 0
        assert r.avg_hops <= 8
