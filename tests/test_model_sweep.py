"""Tests for the Step-1 sweep machinery."""

import numpy as np
import pytest

from repro.core.datapoints import table1_datapoints
from repro.model import PathStatsCache, step1_sweep
from repro.model.sweep import best_point, candidate_vicinity
from repro.topology import Dragonfly
from repro.traffic import Shift, type_2_set


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 3)


@pytest.fixture(scope="module")
def cache(topo):
    return PathStatsCache(topo)


class TestStep1Sweep:
    def test_one_point_per_datapoint(self, topo, cache):
        grid = table1_datapoints(step=0.5)
        points = step1_sweep(
            topo, [Shift(topo, 1, 0)], grid, cache=cache
        )
        assert len(points) == len(grid)
        assert [pt.label for pt in points] == [p.describe() for p in grid]

    def test_sem_zero_for_single_pattern(self, topo, cache):
        points = step1_sweep(
            topo, [Shift(topo, 1, 0)], table1_datapoints(step=0.5),
            cache=cache,
        )
        assert all(pt.sem == 0.0 for pt in points)

    def test_sem_positive_across_patterns(self, topo, cache):
        patterns = [Shift(topo, 1, 0)] + type_2_set(topo, count=2)
        points = step1_sweep(
            topo, patterns, table1_datapoints(step=0.5), cache=cache
        )
        assert all(len(pt.per_pattern) == 3 for pt in points)
        # at least one datapoint shows variation across patterns
        assert any(pt.sem > 0 for pt in points)

    def test_uniform_mode_below_free_mode(self, topo, cache):
        grid = table1_datapoints(step=0.5)
        free = step1_sweep(
            topo, [Shift(topo, 1, 0)], grid, cache=cache, mode="free"
        )
        uni = step1_sweep(
            topo, [Shift(topo, 1, 0)], grid, cache=cache, mode="uniform"
        )
        for f, u in zip(free, uni):
            assert u.mean_throughput <= f.mean_throughput + 1e-9

    def test_full_set_achieves_bound(self, topo, cache):
        from repro.model.bounds import shift_saturation_bound

        points = step1_sweep(
            topo, [Shift(topo, 1, 0)], table1_datapoints(step=0.5),
            cache=cache,
        )
        assert points[-1].label == "all VLB"
        assert points[-1].mean_throughput == pytest.approx(
            shift_saturation_bound(topo), rel=1e-3
        )


class TestVicinity:
    def test_best_and_vicinity(self, topo, cache):
        points = step1_sweep(
            topo, [Shift(topo, 1, 0)], table1_datapoints(step=0.5),
            cache=cache,
        )
        best = best_point(points)
        assert best.mean_throughput == max(
            pt.mean_throughput for pt in points
        )
        tight = candidate_vicinity(points, rel_tol=0.001)
        loose = candidate_vicinity(points, rel_tol=0.5)
        assert {pt.label for pt in tight} <= {pt.label for pt in loose}
        assert best in tight
