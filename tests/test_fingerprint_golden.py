"""Golden fingerprints: the cache-identity surface, pinned by value.

These digests are the actual content addresses of on-disk cached
results.  If one of these assertions fails, a field changed identity --
it was added to, removed from, or renamed in a spec's ``to_dict()`` /
``SimParams.identity_dict()`` -- and every previously cached result
would be silently mis-keyed.  That can be intentional; when it is:

1. bump ``CACHE_VERSION`` in ``repro/perf/cache.py`` (and
   ``SPEC_VERSION`` in ``repro/spec/specs.py`` if spec semantics
   changed),
2. refresh the static snapshot:
   ``python -m repro analyze --update-snapshot``,
3. re-pin the digests below to the new values.

Never "fix" this test by only updating the digest: without the version
bump, old cache entries keyed by the previous layout stay reachable.
"""

import hashlib
import json

from repro.sim.params import SimParams
from repro.spec import (
    ModelSpec,
    PatternSpec,
    PolicySpec,
    RunSpec,
    TopologySpec,
)

BUMP_MSG = (
    "field changed identity -- bump CACHE_VERSION (see this test's "
    "docstring) before re-pinning the digest"
)

GOLDEN_RUN = (
    "6c082646b446c9f4053b0f27d3665e2163fda5d4b93966118845a29152ecea6c"
)
GOLDEN_MODEL = (
    "bf364af96b964fed16222d2260ee4220ecc01c9f19f44e370efa910aacd0d373"
)
GOLDEN_PARAMS = (
    "2553a071cd339900e4b6fe62154ed7cd5d479797691139b125b05f5acdb59afc"
)
GOLDEN_PARAMS_KEYS = [
    "buffer_size", "global_latency", "injection_latency",
    "local_latency", "measure_windows", "min_candidates", "num_vcs",
    "output_queue_size", "packet_size", "router_latency",
    "sat_accept_factor", "sat_latency", "speedup", "ugal_threshold",
    "vc_scheme", "verify", "vlb_cache_per_pair", "vlb_candidates",
    "warmup_windows", "window_cycles",
]


def _run_spec() -> RunSpec:
    return RunSpec(
        topology=TopologySpec.parse("2,4,2,3"),
        pattern=PatternSpec.make("ur"),
        load=0.5,
        routing="ugal-l",
        seed=7,
    )


def test_runspec_fingerprint_pinned():
    assert _run_spec().fingerprint() == GOLDEN_RUN, BUMP_MSG


def test_modelspec_fingerprint_pinned():
    spec = ModelSpec(
        topology=TopologySpec.parse("2,4,2,3"),
        pattern=PatternSpec.make("ur"),
        policy=PolicySpec.make("all"),
    )
    assert spec.fingerprint() == GOLDEN_MODEL, BUMP_MSG


def test_simparams_identity_pinned():
    identity = SimParams().identity_dict()
    assert sorted(identity) == GOLDEN_PARAMS_KEYS, BUMP_MSG
    blob = json.dumps(
        identity, sort_keys=True, separators=(",", ":"), default=str
    )
    assert hashlib.sha256(blob.encode()).hexdigest() == GOLDEN_PARAMS, (
        BUMP_MSG
    )


def test_obs_stays_identity_neutral():
    """Observability config must never reach cache identity."""
    from repro.obs import ObsConfig

    plain = _run_spec()
    instrumented = RunSpec(
        topology=plain.topology,
        pattern=plain.pattern,
        load=plain.load,
        routing=plain.routing,
        params=SimParams(obs=ObsConfig(metrics=True, sample_every=50)),
        seed=plain.seed,
    )
    assert "obs" not in instrumented.params.identity_dict()
    assert instrumented.fingerprint() == plain.fingerprint()


def test_fingerprint_insensitive_to_dict_order():
    """Canonical JSON sorts keys: construction order is irrelevant."""
    a = PatternSpec.make("mixed", ur="ur", adv="shift:1", frac=0.5)
    b = PatternSpec.make("mixed", frac=0.5, adv="shift:1", ur="ur")
    assert a.fingerprint() == b.fingerprint()
