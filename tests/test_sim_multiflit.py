"""Tests for multi-flit packets (virtual cut-through extension)."""

import pytest

from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError, match="packet_size"):
            SimParams(packet_size=0)
        with pytest.raises(ValueError, match="buffer_size"):
            SimParams(packet_size=8, buffer_size=4)


class TestMultiFlitBehaviour:
    def test_serialization_adds_latency(self, topo):
        base = simulate(
            topo, UniformRandom(topo), 0.05,
            params=SimParams(window_cycles=200, packet_size=1), seed=2,
        )
        big = simulate(
            topo, UniformRandom(topo), 0.05,
            params=SimParams(window_cycles=200, packet_size=4), seed=2,
        )
        # each hop serializes 3 extra flits -> noticeably higher latency
        assert big.avg_latency > base.avg_latency + 5
        assert big.packets_measured > 0

    def test_throughput_scales_down_in_packets(self, topo):
        # at packet_size 4, a 0.2 packets/cycle/node load is 0.8
        # flits/cycle/node -- near channel saturation for UR
        small = simulate(
            topo, UniformRandom(topo), 0.2,
            params=SimParams(window_cycles=250, packet_size=1), seed=2,
        )
        big = simulate(
            topo, UniformRandom(topo), 0.2,
            params=SimParams(window_cycles=250, packet_size=4), seed=2,
        )
        assert not small.saturated
        assert big.avg_latency > small.avg_latency

    def test_conservation_under_multiflit(self, topo):
        r = simulate(
            topo, Shift(topo, 2, 0), 0.05,
            params=SimParams(window_cycles=250, packet_size=3), seed=1,
        )
        assert r.packets_measured > 0
        assert r.accepted_rate == pytest.approx(0.05, rel=0.25)
        # channel utilization never exceeds wire capacity
        assert r.channel_utilization["global_max"] <= 1.0 + 1e-9

    def test_adaptive_routing_still_works(self, topo):
        r = simulate(
            topo, Shift(topo, 2, 0), 0.15, routing="ugal-l",
            params=SimParams(window_cycles=250, packet_size=2), seed=1,
        )
        assert r.vlb_fraction > 0.2  # still adapts to VLB under ADV
