"""Edge cases of the sweep harness and stats records."""

import math

import pytest

from repro.sim import LoadSweep, SimParams, saturation_throughput, simulate
from repro.sim.stats import SimResult, StatsCollector
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


class TestLoadSweepRecord:
    def test_empty_sweep(self):
        sweep = LoadSweep(routing="ugal-l", policy_label="all VLB")
        assert sweep.saturation_throughput() == 0.0
        assert sweep.loads == []
        assert sweep.rows() == []

    def test_rows_and_properties(self, topo):
        params = SimParams(window_cycles=100)
        r1 = simulate(topo, UniformRandom(topo), 0.1, params=params, seed=1)
        sweep = LoadSweep(routing="ugal-l", policy_label="x", results=[r1])
        (row,) = sweep.rows()
        assert row[0] == 0.1
        assert sweep.loads == [0.1]
        assert sweep.latencies == [r1.avg_latency]


class TestSaturationSearch:
    def test_hi_not_saturated_short_circuits(self, topo):
        # light pattern that never saturates in the probed range
        params = SimParams(window_cycles=100)
        thr = saturation_throughput(
            topo,
            UniformRandom(topo),
            routing="ugal-l",
            params=params,
            seed=1,
            lo=0.02,
            hi=0.1,
            max_iters=1,
        )
        assert thr == pytest.approx(0.1, rel=0.25)

    def test_lo_saturated_returns_zero(self, topo):
        params = SimParams(window_cycles=100)
        thr = saturation_throughput(
            topo,
            Shift(topo, 1, 0),
            routing="min",
            params=params,
            seed=1,
            lo=0.5,  # already far above MIN's ADV capacity
            hi=0.9,
            max_iters=1,
        )
        assert thr == 0.0


class TestStatsCollector:
    def test_warmup_packets_excluded(self):
        stats = StatsCollector(num_nodes=10, warmup_cycles=100)

        class P:
            inject_cycle = 0
            path_hops = 3
            used_vlb = False

        stats.record_ejection(P(), 50)  # warmup: ignored
        stats.record_ejection(P(), 150)  # measured
        assert stats.ejected == 1

    def test_empty_result_is_saturated(self):
        stats = StatsCollector(num_nodes=10, warmup_cycles=0)
        res = stats.result(
            offered_load=0.5, measure_cycles=100, sat_latency=500.0
        )
        assert res.saturated
        assert math.isinf(res.avg_latency)
        assert res.accepted_rate == 0.0

    def test_live_fraction_scales_saturation_check(self):
        stats = StatsCollector(num_nodes=10, warmup_cycles=0)

        class P:
            inject_cycle = 0
            path_hops = 1
            used_vlb = False

        # 50 packets over 100 cycles x 10 nodes = 0.05 accepted
        for _ in range(50):
            stats.record_ejection(P(), 10)
        # offered 0.1 but only half the nodes live -> effective 0.05: OK
        ok = stats.result(0.1, 100, 500.0, live_fraction=0.5)
        assert not ok.saturated
        # with all nodes live the same acceptance is half the offer: SAT
        sat = stats.result(0.1, 100, 500.0, live_fraction=1.0)
        assert sat.saturated
