"""Fast checks of the ablation experiment runners."""

import pytest

from repro.experiments.ablations import abl_monotonic


class TestAblMonotonic:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_monotonic()

    def test_structure(self, result):
        assert result.figure == "abl_monotonic"
        assert set(result.data) == {
            "30% 5-hop", "60% 5-hop", "5-hop", "all VLB"
        }
        for row in result.data.values():
            assert set(row) == {"free", "monotonic", "uniform"}

    def test_fix_reduces_partial_class_estimates(self, result):
        d = result.data
        assert d["30% 5-hop"]["monotonic"] <= d["30% 5-hop"]["free"] + 1e-9
        assert d["60% 5-hop"]["monotonic"] <= d["60% 5-hop"]["free"] + 1e-9

    def test_all_vlb_unaffected_by_fix(self, result):
        d = result.data["all VLB"]
        assert d["monotonic"] == pytest.approx(d["free"], abs=1e-6)
        # and equals the analytic bound for dfly(4,8,4,9)
        assert d["free"] == pytest.approx(0.5625, rel=1e-3)

    def test_uniform_most_conservative(self, result):
        for row in result.data.values():
            assert row["uniform"] <= row["monotonic"] + 1e-9
