"""Tests for the path-set linter, the verify report, and its wiring into
Algorithm 1 and the simulation engine."""

import json

import pytest

from repro.core import compute_tvlb
from repro.routing.pathset import (
    AllVlbPolicy,
    ExplicitPathSet,
    HopClassPolicy,
)
from repro.routing.vlb import VlbDescriptor
from repro.sim import SimParams
from repro.sim.engine import simulate
from repro.topology import Dragonfly
from repro.traffic.patterns import UniformRandom
from repro.verify import LINT_RULES, Finding, lint_pathset, verify_config


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 5)


def _lint(topo, policy, rules, **kw):
    kw.setdefault("max_pairs", None)  # deterministic: lint every pair
    return lint_pathset(topo, policy, rules=rules, **kw)


def _mid(topo, group):
    """Any switch of ``group`` usable as a VLB intermediate."""
    return topo.switch_id(group, 0)


class TestFindingRecord:
    def test_str_format(self):
        f = Finding("vc-overflow", "error", "pair (0->8)", "too few VCs")
        assert str(f) == "[error] vc-overflow @ pair (0->8): too few VCs"

    def test_registry_names(self):
        assert set(LINT_RULES) == {
            "hop-validity",
            "slot-range",
            "min-minimality",
            "hop-class",
            "vc-overflow",
            "balance",
            "vlb-reachability",
        }

    def test_unknown_rule_rejected(self, topo):
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint_pathset(topo, rules=["hop-validity", "telepathy"])


class TestHopValidity:
    def test_pass(self, topo):
        assert _lint(topo, AllVlbPolicy(), ["hop-validity"], max_pairs=20) == []

    def test_mid_in_endpoint_group_flagged(self, topo):
        bad = ExplicitPathSet(
            paths={(0, 8): [VlbDescriptor(mid=1, slot1=0, slot2=0)]}
        )
        findings = _lint(topo, bad, ["hop-validity"])
        assert findings and all(f.rule == "hop-validity" for f in findings)
        assert findings[0].severity == "error"
        assert "pair (0->8)" in findings[0].location
        assert "mid=1" in findings[0].location


class TestSlotRange:
    def test_pass(self, topo):
        assert _lint(topo, AllVlbPolicy(), ["slot-range"], max_pairs=20) == []

    def test_out_of_range_slot_flagged(self, topo):
        bad = ExplicitPathSet(
            paths={(0, 8): [VlbDescriptor(mid=_mid(topo, 1), slot1=99, slot2=0)]}
        )
        findings = _lint(topo, bad, ["slot-range"])
        assert findings
        assert {f.rule for f in findings} == {"slot-range"}
        assert any("slot 99 out of range" in f.message for f in findings)


class TestMinMinimality:
    def test_pass(self, topo):
        assert _lint(topo, AllVlbPolicy(), ["min-minimality"], max_pairs=20) == []

    def test_detouring_local_route_flagged(self):
        class DetourDragonfly(Dragonfly):
            """Canonical local routes take a pointless intermediate hop."""

            def local_route(self, u, v):
                if self.group_of(u) != self.group_of(v):
                    raise ValueError("not same group")
                detour = next(
                    s for s in self.local_neighbors(u) if s != v
                )
                return [detour]

        topo = DetourDragonfly(2, 4, 2, 5)
        findings = _lint(topo, AllVlbPolicy(), ["min-minimality"], max_pairs=10)
        assert findings
        assert all(f.rule == "min-minimality" for f in findings)
        assert any("takes 2 hops" in f.message and "distance is 1" in f.message
                   for f in findings)


class TestHopClass:
    def test_pass(self, topo):
        pol = HopClassPolicy(4, 0.5, seed=2)
        assert _lint(topo, pol, ["hop-class"], max_pairs=20) == []

    def test_enumerate_contains_mismatch_flagged(self, topo):
        class OverEnumeratingPolicy(HopClassPolicy):
            """Enumerates every VLB path while contains() keeps its
            hop-class restriction -- the inconsistency the LP model and
            the simulator must never see."""

            def iter_descriptors(self, topo, src, dst):
                return AllVlbPolicy().iter_descriptors(topo, src, dst)

        findings = _lint(
            topo, OverEnumeratingPolicy(4, 0.0), ["hop-class"], max_pairs=5
        )
        assert findings
        assert all(f.rule == "hop-class" and f.severity == "error"
                   for f in findings)
        assert "contains() rejects" in findings[0].message


class TestVcOverflow:
    def test_pass_at_scheme_requirement(self, topo):
        vcs = SimParams().vcs_required("par")
        assert _lint(
            topo, AllVlbPolicy(), ["vc-overflow"],
            num_vcs=vcs, routing="par", max_pairs=20,
        ) == []

    def test_too_few_vcs_flagged(self, topo):
        findings = _lint(
            topo, AllVlbPolicy(), ["vc-overflow"],
            num_vcs=2, routing="par", max_pairs=5,
        )
        assert findings and {f.rule for f in findings} == {"vc-overflow"}

    def test_par_fragment_needs_one_extra_level(self, topo):
        # 4 VCs fit every unrevised won path; only the PAR-revised
        # fragments overflow, so every finding must say so
        findings = _lint(
            topo, AllVlbPolicy(), ["vc-overflow"],
            num_vcs=4, routing="par", max_pairs=10,
        )
        assert findings
        assert all("PAR-revised fragment" in f.message for f in findings)
        # ...and under plain UGAL the same budget is clean
        assert _lint(
            topo, AllVlbPolicy(), ["vc-overflow"],
            num_vcs=4, routing="ugal-l", max_pairs=10,
        ) == []


class TestBalance:
    def test_pass_single_path_per_pair(self, topo):
        # one descriptor per pair: every used channel has probability 1
        table = {}
        for d in range(4, 8):
            table[(0, d)] = [VlbDescriptor(mid=_mid(topo, 2), slot1=0, slot2=0)]
        assert _lint(topo, ExplicitPathSet(paths=table), ["balance"]) == []

    def test_skewed_set_flagged(self, topo):
        # pair (0, 8): half the probability mass rides one favourite
        # descriptor (weighted by repetition) while the other half spreads
        # thin -- the favourite's channels run far over the pair's mean
        favourite = VlbDescriptor(mid=topo.switch_id(1, 0), slot1=0, slot2=0)
        tail = [
            VlbDescriptor(mid=topo.switch_id(g, i), slot1=s1, slot2=s2)
            for g in (1, 3, 4)
            for i in range(topo.a)
            for s1 in range(2)
            for s2 in range(2)
            if (g, i, s1, s2) != (1, 0, 0, 0)
        ]
        bad = ExplicitPathSet(paths={(0, 8): [favourite] * len(tail) + tail})
        findings = _lint(topo, bad, ["balance"])
        assert findings
        assert all(f.rule == "balance" and f.severity == "warning"
                   for f in findings)
        assert any("mean usage" in f.message for f in findings)


class TestVlbReachability:
    def test_pass(self, topo):
        assert _lint(
            topo, AllVlbPolicy(), ["vlb-reachability"], max_pairs=20
        ) == []

    def test_empty_pair_flagged(self, topo):
        findings = _lint(topo, ExplicitPathSet(), ["vlb-reachability"],
                         max_pairs=10)
        assert len(findings) == 10
        assert all(f.severity == "warning" for f in findings)
        assert "without any VLB candidate" in findings[0].message


class TestRuleSelection:
    def test_rules_subset_only_runs_selected(self, topo):
        bad = ExplicitPathSet(
            paths={(0, 8): [VlbDescriptor(mid=1, slot1=0, slot2=0)]}
        )
        # hop-validity would flag this pair; a disjoint rule stays silent
        assert _lint(topo, bad, ["min-minimality"]) == []
        assert _lint(topo, bad, ["hop-validity"]) != []

    def test_errors_sort_before_warnings(self, topo):
        bad = ExplicitPathSet(
            paths={(0, 8): [VlbDescriptor(mid=1, slot1=0, slot2=0)]}
        )
        findings = _lint(topo, bad, ["vlb-reachability", "hop-validity"],
                         max_pairs=None)
        severities = [f.severity for f in findings]
        assert "error" in severities and "warning" in severities
        assert severities == sorted(severities)  # error < warning


class TestVerifyConfig:
    def test_paper_config_passes(self, topo):
        report = verify_config(topo, scheme="won", routing="par")
        assert report.passed
        assert report.errors == []
        assert report.cdg is not None and report.cdg.certified
        assert report.num_vcs == SimParams().vcs_required("par")
        text = report.to_text()
        assert "RESULT: PASS" in text and "deadlock: deadlock-free" in text

    def test_failure_renders_cycle(self, topo):
        report = verify_config(topo, scheme="none", run_lint=False)
        assert not report.passed
        text = report.to_text()
        assert "RESULT: FAIL" in text
        assert "dependency cycle (each waits on the next)" in text
        assert "@ vc 0" in text

    def test_json_roundtrip(self, topo):
        report = verify_config(topo, scheme="won", routing="ugal-l")
        data = json.loads(report.to_json())
        assert data["passed"] is True
        assert data["scheme"] == "won" and data["routing"] == "ugal-l"
        assert data["cdg"]["certified"] is True
        assert data["cdg"]["cycle"] is None
        assert isinstance(data["findings"], list)

    def test_skipping_stages(self, topo):
        report = verify_config(topo, run_cdg=False, run_lint=False)
        assert report.cdg is None and report.findings == []
        assert report.passed
        assert "deadlock: skipped" in report.to_text()

    def test_lint_errors_fail_report(self, topo):
        bad = ExplicitPathSet(
            paths={(0, 8): [VlbDescriptor(mid=1, slot1=0, slot2=0)]}
        )
        report = verify_config(topo, bad, max_pairs=None)
        assert report.cdg is not None and report.cdg.deadlock_free
        assert report.errors and not report.passed


def _all_pairs_broken(topo):
    """A policy whose every pair enumerates an unbuildable descriptor."""
    table = {
        (s, d): [VlbDescriptor(mid=s, slot1=0, slot2=0)]
        for s in range(topo.num_switches)
        for d in range(topo.num_switches)
        if s != d
    }
    return ExplicitPathSet(paths=table, label="broken")


class TestEngineGate:
    def test_verified_simulation_runs(self, topo):
        params = SimParams(verify=True, window_cycles=100)
        res = simulate(topo, UniformRandom(topo), 0.05, params=params, seed=1)
        assert res.packets_measured > 0

    def test_broken_policy_blocked_before_simulation(self, topo):
        params = SimParams(verify=True, window_cycles=100)
        with pytest.raises(RuntimeError, match="static verification failed"):
            simulate(
                topo,
                UniformRandom(topo),
                0.05,
                routing="t-ugal-l",
                policy=_all_pairs_broken(topo),
                params=params,
            )

    def test_gate_off_by_default(self, topo):
        # the same broken policy simulates (badly) without the gate: the
        # pre-flight check is opt-in
        assert SimParams().verify is False


class TestAlgorithmFinalization:
    def test_compute_tvlb_attaches_verify_report(self, topo):
        def shortest(policy, label):
            try:
                return -policy.average_hops(topo, 0, topo.a * 2)
            except (ValueError, TypeError):
                return -10.0

        result = compute_tvlb(
            topo, evaluator=shortest, num_type1=2, num_type2=1, seed=0
        )
        assert result.verify_report is not None
        assert result.verify_report.passed
        assert result.verify_report.routing == "par"

    def test_verify_false_skips(self, topo):
        def shortest(policy, label):
            try:
                return -policy.average_hops(topo, 0, topo.a * 2)
            except (ValueError, TypeError):
                return -10.0

        result = compute_tvlb(
            topo, evaluator=shortest, num_type1=2, num_type2=1,
            verify=False, seed=0,
        )
        assert result.verify_report is None
