"""Tests for traffic patterns and their demand matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Dragonfly
from repro.traffic import (
    NO_TRAFFIC,
    GroupSwitchPermutation,
    Mixed,
    RandomPermutation,
    Shift,
    TimeMixed,
    UniformRandom,
    type_1_set,
    type_2_set,
)


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestUniformRandom:
    def test_never_self(self, topo, rng):
        ur = UniformRandom(topo)
        srcs = np.arange(topo.num_nodes)
        for _ in range(20):
            dests = ur.sample_destinations(srcs, rng)
            assert np.all(dests != srcs)
            assert np.all((0 <= dests) & (dests < topo.num_nodes))

    def test_covers_all_destinations(self, topo, rng):
        ur = UniformRandom(topo)
        srcs = np.zeros(5000, dtype=int)
        dests = ur.sample_destinations(srcs, rng)
        assert set(dests) == set(range(1, topo.num_nodes))

    def test_demand_matrix_uniform_off_diagonal(self, topo):
        d = UniformRandom(topo).demand_matrix()
        assert np.all(np.diag(d) == 0)
        off = d[~np.eye(len(d), dtype=bool)]
        assert np.allclose(off, off[0])
        # total network demand: each node emits 1 minus same-switch share
        per_node_same_switch = (topo.p - 1) / (topo.num_nodes - 1)
        expected_total = topo.num_nodes * (1 - per_node_same_switch)
        assert d.sum() == pytest.approx(expected_total)


class TestShift:
    def test_shift_formula(self, topo, rng):
        sh = Shift(topo, dg=2, ds=1)
        src = topo.node_id(topo.switch_id(3, 2), 1)  # (g=3, s=2, k=1)
        (dest,) = sh.sample_destinations(np.array([src]), rng)
        assert dest == topo.node_id(topo.switch_id(5, 3), 1)

    def test_shift_is_permutation(self, topo, rng):
        sh = Shift(topo, dg=1, ds=0)
        srcs = np.arange(topo.num_nodes)
        dests = sh.sample_destinations(srcs, rng)
        assert sorted(dests) == list(srcs)

    def test_adv_concentrates_on_one_group_pair(self, topo):
        sh = Shift(topo, dg=2, ds=0)
        d = sh.demand_matrix()
        for s in range(topo.num_switches):
            dst_row = np.flatnonzero(d[s])
            assert len(dst_row) == 1
            (dst,) = dst_row
            assert topo.group_of(dst) == (topo.group_of(s) + 2) % topo.g
            assert topo.local_index(dst) == topo.local_index(s)
            assert d[s, dst] == topo.p

    def test_shift_zero_is_no_traffic(self, topo, rng):
        sh = Shift(topo, 0, 0)
        dests = sh.sample_destinations(np.arange(topo.num_nodes), rng)
        assert np.all(dests == NO_TRAFFIC)
        assert sh.demand_matrix().sum() == 0

    def test_rejects_out_of_range(self, topo):
        with pytest.raises(ValueError):
            Shift(topo, topo.g, 0)
        with pytest.raises(ValueError):
            Shift(topo, 1, topo.a)

    @settings(max_examples=20, deadline=None)
    @given(dg=st.integers(0, 8), ds=st.integers(0, 3))
    def test_all_shifts_are_permutations_or_empty(self, dg, ds):
        t = Dragonfly(2, 4, 2, 9)
        sh = Shift(t, dg, ds)
        dest = sh.dest_map
        live = dest[dest != NO_TRAFFIC]
        assert len(set(live)) == len(live)


class TestRandomPermutation:
    def test_is_permutation_modulo_fixed_points(self, topo):
        perm = RandomPermutation(topo, seed=3)
        dest = perm.dest_map
        live = dest[dest != NO_TRAFFIC]
        assert len(set(live)) == len(live)

    def test_no_self_sends(self, topo):
        perm = RandomPermutation(topo, seed=3)
        dest = perm.dest_map
        idx = np.arange(len(dest))
        assert not np.any(dest == idx)

    def test_seed_determinism(self, topo):
        a = RandomPermutation(topo, seed=5).dest_map
        b = RandomPermutation(topo, seed=5).dest_map
        c = RandomPermutation(topo, seed=6).dest_map
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_demand_counts_nodes(self, topo):
        perm = RandomPermutation(topo, seed=1)
        d = perm.demand_matrix()
        live = perm.dest_map != NO_TRAFFIC
        cross_switch = sum(
            1
            for n in np.flatnonzero(live)
            if topo.switch_of_node(n)
            != topo.switch_of_node(perm.dest_map[n])
        )
        assert d.sum() == cross_switch


class TestGroupSwitchPermutation:
    def test_group_level_derangement(self, topo):
        pat = GroupSwitchPermutation(topo, seed=11)
        gp = pat.group_perm
        assert sorted(gp) == list(range(topo.g))
        assert not np.any(gp == np.arange(topo.g))

    def test_switch_level_permutation_per_group(self, topo):
        pat = GroupSwitchPermutation(topo, seed=11)
        dest = pat.dest_map
        for g in range(topo.g):
            for s in range(topo.a):
                src = topo.node_id(topo.switch_id(g, s), 0)
                d = dest[src]
                assert topo.group_of(topo.switch_of_node(d)) == pat.group_perm[g]
                assert d % topo.p == 0  # node index preserved

    def test_is_full_permutation(self, topo):
        dest = GroupSwitchPermutation(topo, seed=2).dest_map
        assert sorted(dest) == list(range(topo.num_nodes))


class TestMixed:
    def test_role_split_counts(self, topo):
        mx = Mixed(topo, 25, 75, seed=1)
        assert mx.is_ur.sum() == round(topo.num_nodes * 0.25)

    def test_adv_nodes_follow_shift(self, topo, rng):
        mx = Mixed(topo, 50, 50, seed=1)
        srcs = np.flatnonzero(~mx.is_ur)
        dests = mx.sample_destinations(srcs, rng)
        expected = Shift(topo, 1, 0).dest_map[srcs]
        assert np.array_equal(dests, expected)

    def test_ur_nodes_vary(self, topo, rng):
        mx = Mixed(topo, 100, 0, seed=1)
        srcs = np.arange(topo.num_nodes)
        d1 = mx.sample_destinations(srcs, rng)
        d2 = mx.sample_destinations(srcs, rng)
        assert not np.array_equal(d1, d2)

    def test_percent_validation(self, topo):
        with pytest.raises(ValueError):
            Mixed(topo, 30, 30)
        with pytest.raises(ValueError):
            TimeMixed(topo, -10, 110)

    def test_demand_interpolates(self, topo):
        full_adv = Mixed(topo, 0, 100, seed=1).demand_matrix()
        assert np.allclose(full_adv, Shift(topo, 1, 0).demand_matrix())
        full_ur = Mixed(topo, 100, 0, seed=1).demand_matrix()
        assert np.allclose(full_ur, UniformRandom(topo).demand_matrix())


class TestTimeMixed:
    def test_per_packet_mixing(self, topo, rng):
        tm = TimeMixed(topo, 50, 50)
        src = topo.node_id(0, 0)
        srcs = np.full(4000, src)
        dests = tm.sample_destinations(srcs, rng)
        adv_dest = Shift(topo, 1, 0).dest_map[src]
        frac_adv = np.mean(dests == adv_dest)
        assert 0.4 < frac_adv < 0.6

    def test_demand_is_convex_combination(self, topo):
        tm = TimeMixed(topo, 50, 50)
        expected = 0.5 * UniformRandom(topo).demand_matrix() + 0.5 * Shift(
            topo, 1, 0
        ).demand_matrix()
        assert np.allclose(tm.demand_matrix(), expected)


class TestAdversarialSuites:
    def test_type1_count(self, topo):
        pats = type_1_set(topo)
        assert len(pats) == (topo.g - 1) * topo.a
        labels = {p.describe() for p in pats}
        assert len(labels) == len(pats)

    def test_type2_count_and_seeds(self, topo):
        pats = type_2_set(topo, count=5, seed=100)
        assert len(pats) == 5
        maps = [tuple(p.dest_map) for p in pats]
        assert len(set(maps)) == 5

    def test_describe_labels(self, topo):
        assert Shift(topo, 1, 0).describe() == "shift(1,0)"
        assert "MIXED(25,75" in Mixed(topo, 25, 75).describe()
        assert "TMIXED(50,50" in TimeMixed(topo, 50, 50).describe()
