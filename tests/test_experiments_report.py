"""Tests for result rendering and the figure registry."""

import pytest

from repro.experiments import FIGURES, render_curves, render_table, run_figure
from repro.experiments.report import FigureResult


class TestRenderTable:
    def test_alignment_and_rows(self):
        text = render_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.25]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        # column widths consistent
        assert len(lines[0]) == len(lines[1])

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456789]], floatfmt=".2f")
        assert "0.12" in text


class TestRenderCurves:
    def test_missing_points_render_dash(self):
        text = render_curves(
            "load",
            {
                "A": [(0.1, 10.0), (0.2, 20.0)],
                "B": [(0.1, 11.0)],  # saturated before 0.2
            },
        )
        lines = text.splitlines()
        assert any("-" in line and "0.2" in line for line in lines)

    def test_x_values_union(self):
        text = render_curves(
            "load", {"A": [(0.1, 1.0)], "B": [(0.3, 2.0)]}
        )
        assert "0.1" in text and "0.3" in text


class TestFigureRegistry:
    def test_all_paper_experiments_registered(self):
        expected = (
            {"table1", "table2", "table3"}
            | {f"fig{i:02d}" for i in range(4, 19)}
            | {"adv_discovered"}
        )
        assert expected == set(FIGURES)

    def test_unknown_figure_raises(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("fig99")

    def test_tables_run(self):
        for name in ("table1", "table2", "table3"):
            result = run_figure(name)
            assert isinstance(result, FigureResult)
            assert result.figure == name
            assert result.text

    def test_figure_result_str(self):
        r = FigureResult("figX", "a title", "body")
        assert "figX" in str(r) and "a title" in str(r)


class TestTvlbPolicyFor:
    def test_dense_gets_strategic(self):
        from repro.experiments import tvlb_policy_for
        from repro.routing.pathset import (
            AllVlbPolicy,
            StrategicFiveHopPolicy,
        )
        from repro.topology import Dragonfly

        assert isinstance(
            tvlb_policy_for(Dragonfly(4, 8, 4, 9)), StrategicFiveHopPolicy
        )
        assert isinstance(
            tvlb_policy_for(Dragonfly(4, 8, 4, 33)), AllVlbPolicy
        )
