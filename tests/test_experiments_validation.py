"""Fast checks of the validation experiment runners (tiny windows)."""

import pytest

from repro.experiments.validation import validate_adversarial, validate_uniform
from repro.topology import Dragonfly


@pytest.fixture(autouse=True)
def tiny(monkeypatch):
    monkeypatch.setenv("REPRO_WINDOW", "60")


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 5)


@pytest.mark.slow
class TestValidationRunners:
    def test_uniform_structure(self, topo):
        result = validate_uniform(topo)
        assert set(result.data) == {"min", "ugal-l", "vlb"}
        for row in result.data.values():
            assert row["saturation"] >= 0.0
        # MIN beats VLB on uniform traffic even at tiny windows
        assert (
            result.data["min"]["low_load_latency"]
            < result.data["vlb"]["low_load_latency"]
        )

    def test_adversarial_structure(self, topo):
        result = validate_adversarial(topo)
        assert result.data["min_bound"] == pytest.approx(
            topo.links_per_group_pair / (topo.a * topo.p)
        )
        assert (
            result.data["vlb"]["saturation"]
            > result.data["min"]["saturation"]
        )
